"""Unit tests for tracing and statistics primitives."""

import pytest

from repro.sim import Accumulator, Counter, StatRegistry, TimeSeries, Tracer
from repro.sim.resources import PriorityFifoResource
from repro.sim.engine import Simulator


# --------------------------------------------------------------------- #
# stats
# --------------------------------------------------------------------- #
def test_counter():
    c = Counter("x")
    c.incr()
    c.incr(4)
    assert int(c) == 5


def test_accumulator_statistics():
    a = Accumulator("lat")
    for v in (1.0, 3.0, 2.0):
        a.add(v)
    assert a.total == pytest.approx(6.0)
    assert a.count == 3
    assert a.mean == pytest.approx(2.0)
    assert a.min == 1.0
    assert a.max == 3.0


def test_accumulator_empty_mean_is_zero():
    assert Accumulator().mean == 0.0


def test_timeseries():
    ts = TimeSeries("q")
    ts.record(0.0, 1.0)
    ts.record(1.0, 2.0)
    assert len(ts) == 2
    assert ts.last() == (1.0, 2.0)
    assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
    with pytest.raises(IndexError):
        TimeSeries().last()


def test_registry_reuses_and_snapshots():
    reg = StatRegistry()
    reg.counter("msgs").incr(3)
    assert reg.counter("msgs").value == 3  # same object on re-lookup
    reg.accumulator("bytes").add(100.0)
    reg.timeseries("load").record(1.0, 7.0)
    snap = reg.snapshot()
    assert snap["counter.msgs"] == 3.0
    assert snap["sum.bytes"] == 100.0
    assert snap["mean.bytes"] == 100.0
    assert snap["last.load"] == 7.0


# --------------------------------------------------------------------- #
# tracer
# --------------------------------------------------------------------- #
def test_tracer_records_and_formats():
    tr = Tracer(enabled=True)
    tr.emit(1.5, "task", "start", task=3, proc=1)
    tr.emit(2.0, "message", "object", nbytes=100)
    assert len(tr) == 2
    assert tr.filter("task")[0].attr("task") == 3
    assert tr.filter("task")[0].attr("missing", "d") == "d"
    assert "task:start" in tr.format()
    assert tr.histogram() == {"task": 1, "message": 1}


def test_tracer_disabled_records_nothing():
    tr = Tracer(enabled=False)
    tr.emit(0.0, "task", "x")
    assert len(tr) == 0


def test_tracer_category_filtering():
    tr = Tracer(enabled=True, categories=["message"])
    tr.emit(0.0, "task", "x")
    tr.emit(0.0, "message", "y")
    assert [e.category for e in tr] == ["message"]


def test_trace_format_is_stable_key_order():
    tr = Tracer(enabled=True)
    tr.emit(0.0, "c", "l", zebra=1, alpha=2)
    assert tr.events[0].format().index("alpha") < tr.events[0].format().index("zebra")


# --------------------------------------------------------------------- #
# priority resource
# --------------------------------------------------------------------- #
def test_priority_resource_urgent_preempts_queue_not_service():
    sim = Simulator()
    cpu = PriorityFifoResource(sim, "cpu")
    order = []
    cpu.submit(1.0, lambda s, f: order.append(("normal1", s, f)))
    cpu.submit(1.0, lambda s, f: order.append(("normal2", s, f)))
    # Urgent job submitted while normal1 is being served: it runs before
    # normal2 but does not preempt normal1.
    sim.schedule(0.5, lambda: cpu.submit(
        0.25, lambda s, f: order.append(("urgent", s, f)), urgent=True))
    sim.run()
    assert [x[0] for x in order] == ["normal1", "urgent", "normal2"]
    assert order[1][1] == pytest.approx(1.0)   # urgent starts at service end
    assert order[2][1] == pytest.approx(1.25)


def test_priority_resource_counters():
    sim = Simulator()
    cpu = PriorityFifoResource(sim)
    cpu.submit(1.0, lambda s, f: None)
    cpu.submit(2.0, lambda s, f: None, urgent=True)
    assert cpu.queue_length == 1
    sim.run()
    assert cpu.jobs_served == 2
    assert cpu.busy_time == pytest.approx(3.0)
    assert cpu.queue_length == 0


def test_priority_resource_rejects_negative():
    sim = Simulator()
    cpu = PriorityFifoResource(sim)
    with pytest.raises(ValueError):
        cpu.submit(-1.0, lambda s, f: None)


# --------------------------------------------------------------------- #
# tracer exports
# --------------------------------------------------------------------- #
def test_tracer_multi_category_filter_and_histogram():
    tr = Tracer(enabled=True, categories=["task", "object"])
    tr.emit(0.0, "task", "start", proc=0)
    tr.emit(0.1, "message", "object", nbytes=64)   # filtered out
    tr.emit(0.2, "object", "fetch", oid=7)
    tr.emit(0.3, "task", "end", proc=0)
    assert tr.histogram() == {"task": 2, "object": 1}
    assert [e.label for e in tr.filter("task")] == ["start", "end"]
    assert tr.filter("message") == []


def test_histogram_empty_tracer():
    assert Tracer(enabled=True).histogram() == {}


def test_to_jsonl_round_trips():
    import json

    tr = Tracer(enabled=True)
    tr.emit(1.5, "message", "task", dst=2, nbytes=256, src=0)
    tr.emit(2.0, "task", "run", proc=1)
    lines = tr.to_jsonl().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first == {"time": 1.5, "category": "message", "label": "task",
                     "dst": 2, "nbytes": 256, "src": 0}
    # Key order is stable: header fields first, then sorted attributes.
    assert list(first) == ["time", "category", "label", "dst", "nbytes", "src"]


def test_to_chrome_json_shape():
    import json

    tr = Tracer(enabled=True)
    tr.emit(0.001, "task", "run", proc=3)
    tr.emit(0.002, "message", "object", dst=1, nbytes=64)
    doc = json.loads(tr.to_chrome_json())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    # One thread_name metadata event per distinct row, before the body.
    assert [m["name"] for m in meta] == ["thread_name", "thread_name"]
    assert sorted(m["args"]["name"] for m in meta) == ["proc 1", "proc 3"]
    assert len(events) == 2
    assert events[0]["name"] == "task:run"
    assert events[0]["ph"] == "i"
    assert events[0]["ts"] == pytest.approx(1000.0)  # seconds -> microseconds
    assert events[0]["tid"] == 3                      # proc maps to the row
    assert events[1]["tid"] == 1                      # dst when no proc
    assert events[1]["args"]["nbytes"] == 64


def test_span_pairing_and_duration():
    tr = Tracer(enabled=True)
    tr.span_begin(1.0, "task", "exec", proc=2)
    tr.span_end(1.5, "task", "exec", proc=2)
    tr.span(0.2, 0.9, "message", "object", src=0, dst=1)
    pairs = tr.spans()
    assert len(pairs) == 2
    task_pairs = tr.spans("task")
    assert len(task_pairs) == 1
    begin, end = task_pairs[0]
    assert (begin.time, end.time) == (1.0, 1.5)


def test_span_nesting_pairs_innermost_first():
    tr = Tracer(enabled=True)
    tr.span_begin(0.0, "task", "exec", proc=1)
    tr.span_begin(0.2, "task", "exec", proc=1)
    tr.span_end(0.4, "task", "exec", proc=1)
    tr.span_end(1.0, "task", "exec", proc=1)
    pairs = tr.spans("task")
    assert [(b.time, e.time) for b, e in pairs] == [(0.2, 0.4), (0.0, 1.0)]


def test_spans_separate_rows_do_not_pair():
    tr = Tracer(enabled=True)
    tr.span_begin(0.0, "task", "exec", proc=1)
    tr.span_end(0.5, "task", "exec", proc=2)  # different row: no pair
    # The orphaned begin surfaces as a zero-length open span, not a match.
    pairs = tr.spans("task")
    assert len(pairs) == 1
    begin, end = pairs[0]
    assert begin.attr("proc") == 1
    assert end.time == begin.time and end.attr("open") is True


def test_spans_surface_unmatched_begins_as_open():
    tr = Tracer(enabled=True)
    tr.span_begin(1.0, "task", "exec", task=7, proc=0)
    tr.span_begin(2.0, "task", "exec", task=8, proc=0)
    tr.span_end(3.0, "task", "exec", task=8, proc=0)
    pairs = tr.spans("task")
    # Innermost-first pairing closes task 8; task 7's begin (e.g. a task
    # aborted mid-exec) must still be visible as a zero-length open span.
    assert len(pairs) == 2
    closed, opened = pairs[0], pairs[1]
    assert closed[1].time == 3.0 and closed[1].attr("open") is None
    assert opened[0].attr("task") == 7
    assert opened[1].time == opened[0].time == 1.0
    assert opened[1].attr("open") is True
    assert opened[1].attr("task") == 7  # original attrs preserved


def test_span_disabled_tracer_is_noop():
    tr = Tracer(enabled=False)
    tr.span(0.0, 1.0, "task", "exec", proc=0)
    tr.span_begin(0.0, "task", "exec")
    tr.span_end(1.0, "task", "exec")
    assert len(tr) == 0


def test_chrome_export_emits_duration_events():
    import json

    tr = Tracer(enabled=True)
    # Out-of-order append (completion callbacks report spans late): the
    # export must still sort by timestamp.
    tr.emit(0.004, "task", "finish", proc=1)
    tr.span(0.001, 0.003, "task", "exec", proc=1, task=7)
    doc = json.loads(tr.to_chrome_json())
    events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    assert [e["ph"] for e in events] == ["X", "i"]
    span = events[0]
    assert span["ts"] == pytest.approx(1000.0)
    assert span["dur"] == pytest.approx(2000.0)
    assert span["args"]["task"] == 7
    assert span["tid"] == 1


def test_chrome_export_keeps_unmatched_begin():
    import json

    tr = Tracer(enabled=True)
    tr.span_begin(0.001, "task", "exec", proc=0)
    doc = json.loads(tr.to_chrome_json())
    phases = [e["ph"] for e in doc["traceEvents"]]
    assert "B" in phases and "X" not in phases


def test_row_tids_integers_keep_value_others_follow():
    tr = Tracer(enabled=True)
    tr.emit(0.0, "task", "a", proc=5)
    tr.emit(0.0, "task", "b", proc=1)
    tr.emit(0.0, "bus", "c", proc="ethernet")
    mapping = tr.row_tids()
    assert mapping[5] == 5 and mapping[1] == 1
    assert mapping["ethernet"] == 6  # after the largest integer row


def test_jsonl_span_events_carry_phase_key():
    import json

    tr = Tracer(enabled=True)
    tr.emit(0.1, "task", "finish", proc=0)
    tr.span(0.0, 0.2, "task", "exec", proc=0)
    lines = [json.loads(l) for l in tr.to_jsonl().splitlines()]
    assert "phase" not in lines[0]           # instants unchanged
    assert lines[1]["phase"] == "B"
    assert lines[2]["phase"] == "E"


def test_write_picks_format_from_extension(tmp_path):
    import json

    tr = Tracer(enabled=True)
    tr.emit(0.5, "task", "run", proc=0)
    jsonl = tmp_path / "trace.jsonl"
    chrome = tmp_path / "trace.json"
    tr.write(str(jsonl))
    tr.write(str(chrome))
    assert json.loads(jsonl.read_text().splitlines()[0])["label"] == "run"
    assert "traceEvents" in json.loads(chrome.read_text())


def test_row_tids_stable_across_identical_runs():
    # Satellite of the timeline contract: two identical traced runs must
    # assign identical thread ids (and therefore export byte-identical
    # Chrome JSON), so saved timelines stay comparable between runs.
    from repro.apps import MachineKind
    from repro.lab.experiments import run_app

    tracers = []
    for _ in range(2):
        tr = Tracer(enabled=True)
        run_app("water", 4, MachineKind.IPSC860, scale="tiny", tracer=tr)
        tracers.append(tr)
    t1, t2 = tracers
    assert t1.row_tids() == t2.row_tids()
    assert t1.to_chrome_json() == t2.to_chrome_json()


def test_row_tids_mixed_rows_are_deterministic():
    def build():
        tr = Tracer(enabled=True)
        tr.emit(0.0, "task", "a", proc=3)
        tr.emit(0.0, "bus", "b", proc="link-b")
        tr.emit(0.1, "bus", "a", proc="link-a")
        tr.emit(0.2, "task", "c", proc=0)
        return tr

    mapping = build().row_tids()
    # Integer rows keep their value; strings follow in sorted order, so
    # the mapping depends only on the set of rows, not arrival order.
    assert mapping == {0: 0, 3: 3, "link-a": 4, "link-b": 5}
    assert build().row_tids() == mapping


def test_empty_tracer_is_falsy_but_usable():
    # Regression: machines must not replace a passed-in (still empty)
    # tracer via truthiness — __len__ == 0 makes a fresh Tracer falsy.
    tr = Tracer(enabled=True)
    assert len(tr) == 0
    from repro.machines.dash import DashMachine

    machine = DashMachine(2, tracer=tr)
    assert machine.tracer is tr
