"""Unit tests for tracing and statistics primitives."""

import pytest

from repro.sim import Accumulator, Counter, StatRegistry, TimeSeries, Tracer
from repro.sim.resources import PriorityFifoResource
from repro.sim.engine import Simulator


# --------------------------------------------------------------------- #
# stats
# --------------------------------------------------------------------- #
def test_counter():
    c = Counter("x")
    c.incr()
    c.incr(4)
    assert int(c) == 5


def test_accumulator_statistics():
    a = Accumulator("lat")
    for v in (1.0, 3.0, 2.0):
        a.add(v)
    assert a.total == pytest.approx(6.0)
    assert a.count == 3
    assert a.mean == pytest.approx(2.0)
    assert a.min == 1.0
    assert a.max == 3.0


def test_accumulator_empty_mean_is_zero():
    assert Accumulator().mean == 0.0


def test_timeseries():
    ts = TimeSeries("q")
    ts.record(0.0, 1.0)
    ts.record(1.0, 2.0)
    assert len(ts) == 2
    assert ts.last() == (1.0, 2.0)
    assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
    with pytest.raises(IndexError):
        TimeSeries().last()


def test_registry_reuses_and_snapshots():
    reg = StatRegistry()
    reg.counter("msgs").incr(3)
    assert reg.counter("msgs").value == 3  # same object on re-lookup
    reg.accumulator("bytes").add(100.0)
    reg.timeseries("load").record(1.0, 7.0)
    snap = reg.snapshot()
    assert snap["counter.msgs"] == 3.0
    assert snap["sum.bytes"] == 100.0
    assert snap["mean.bytes"] == 100.0
    assert snap["last.load"] == 7.0


# --------------------------------------------------------------------- #
# tracer
# --------------------------------------------------------------------- #
def test_tracer_records_and_formats():
    tr = Tracer(enabled=True)
    tr.emit(1.5, "task", "start", task=3, proc=1)
    tr.emit(2.0, "message", "object", nbytes=100)
    assert len(tr) == 2
    assert tr.filter("task")[0].attr("task") == 3
    assert tr.filter("task")[0].attr("missing", "d") == "d"
    assert "task:start" in tr.format()
    assert tr.histogram() == {"task": 1, "message": 1}


def test_tracer_disabled_records_nothing():
    tr = Tracer(enabled=False)
    tr.emit(0.0, "task", "x")
    assert len(tr) == 0


def test_tracer_category_filtering():
    tr = Tracer(enabled=True, categories=["message"])
    tr.emit(0.0, "task", "x")
    tr.emit(0.0, "message", "y")
    assert [e.category for e in tr] == ["message"]


def test_trace_format_is_stable_key_order():
    tr = Tracer(enabled=True)
    tr.emit(0.0, "c", "l", zebra=1, alpha=2)
    assert tr.events[0].format().index("alpha") < tr.events[0].format().index("zebra")


# --------------------------------------------------------------------- #
# priority resource
# --------------------------------------------------------------------- #
def test_priority_resource_urgent_preempts_queue_not_service():
    sim = Simulator()
    cpu = PriorityFifoResource(sim, "cpu")
    order = []
    cpu.submit(1.0, lambda s, f: order.append(("normal1", s, f)))
    cpu.submit(1.0, lambda s, f: order.append(("normal2", s, f)))
    # Urgent job submitted while normal1 is being served: it runs before
    # normal2 but does not preempt normal1.
    sim.schedule(0.5, lambda: cpu.submit(
        0.25, lambda s, f: order.append(("urgent", s, f)), urgent=True))
    sim.run()
    assert [x[0] for x in order] == ["normal1", "urgent", "normal2"]
    assert order[1][1] == pytest.approx(1.0)   # urgent starts at service end
    assert order[2][1] == pytest.approx(1.25)


def test_priority_resource_counters():
    sim = Simulator()
    cpu = PriorityFifoResource(sim)
    cpu.submit(1.0, lambda s, f: None)
    cpu.submit(2.0, lambda s, f: None, urgent=True)
    assert cpu.queue_length == 1
    sim.run()
    assert cpu.jobs_served == 2
    assert cpu.busy_time == pytest.approx(3.0)
    assert cpu.queue_length == 0


def test_priority_resource_rejects_negative():
    sim = Simulator()
    cpu = PriorityFifoResource(sim)
    with pytest.raises(ValueError):
        cpu.submit(-1.0, lambda s, f: None)
