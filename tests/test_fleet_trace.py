"""Tests for fleet trace correlation: NTP offset math, deterministic
timeline merges, and the end-to-end remote sweep trace."""

import random

import pytest

from repro.obs.schema import FLEET_TRACE_SCHEMA, validate_snapshot
from repro.obs.snapshot import dump_json
from repro.telemetry.fleet import (
    FleetTraceCollector,
    aggregate_snapshots,
    estimate_offsets,
    merge_timeline,
)

W1 = "http://w1:1"
W2 = "http://w2:2"


def _dispatch(worker, index, t_send, t_arrive, t_recv, t_reply,
              t0=None, t1=None, attempt=0, seq=0):
    return {"kind": "dispatch", "worker": worker, "index": index,
            "attempt": attempt, "seq": seq, "t_send": t_send,
            "t_arrive": t_arrive, "t_recv": t_recv, "t_reply": t_reply,
            "t0": t0, "t1": t1, "error": None}


# --------------------------------------------------------------------- #
# clock-offset estimation
# --------------------------------------------------------------------- #
def test_offset_exact_for_symmetric_exchange():
    # Worker clock runs 100s ahead of the host; network delay is a
    # symmetric 0.5s each way.  NTP recovers the offset exactly.
    rec = _dispatch(W1, 0, t_send=10.0, t_arrive=13.0,
                    t_recv=110.5, t_reply=112.5)
    out = estimate_offsets([rec])
    assert out[W1]["offset"] == pytest.approx(100.0)
    assert out[W1]["rtt"] == pytest.approx(1.0)


def test_offset_uses_minimum_rtt_sample():
    # The 2s-RTT exchange is noisier than the 0.2s one; the estimate
    # must come from the tight exchange.
    loose = _dispatch(W1, 0, t_send=0.0, t_arrive=3.0,
                      t_recv=51.8, t_reply=52.8)   # rtt 2.0, offset 50.8
    tight = _dispatch(W1, 1, t_send=5.0, t_arrive=5.4,
                      t_recv=55.1, t_reply=55.3)   # rtt 0.2, offset 50.0
    for order in ([loose, tight], [tight, loose]):
        out = estimate_offsets(order)
        assert out[W1]["offset"] == pytest.approx(50.0)
        assert out[W1]["rtt"] == pytest.approx(0.2)


def test_offset_without_anchors_defaults_to_zero():
    rec = _dispatch(W1, 0, t_send=0.0, t_arrive=1.0,
                    t_recv=None, t_reply=None)
    out = estimate_offsets([rec])
    assert out[W1] == {"offset": 0.0, "rtt": None}


def test_offset_clamps_negative_rtt():
    # Worker anchors can straddle host anchors under clock weirdness;
    # rtt must never go negative.
    rec = _dispatch(W1, 0, t_send=0.0, t_arrive=1.0,
                    t_recv=100.0, t_reply=101.5)
    out = estimate_offsets([rec])
    assert out[W1]["rtt"] == 0.0


# --------------------------------------------------------------------- #
# timeline merge
# --------------------------------------------------------------------- #
def _records():
    recs = [
        _dispatch(W1, 0, 0.0, 1.0, 100.2, 100.8, t0=100.3, t1=100.7,
                  seq=0),
        _dispatch(W2, 1, 0.1, 1.3, 200.4, 201.0, t0=200.5, t1=200.9,
                  seq=1),
        {"kind": "failure", "worker": W1, "index": 2, "attempt": 0,
         "t_send": 1.1, "t_arrive": 1.2, "error": "boom"},
        {"kind": "requeue", "worker": W1, "index": 2, "attempt": 0,
         "t": 1.25},
        {"kind": "steal", "worker": W2, "index": 2, "attempt": 1,
         "t": 1.3},
        _dispatch(W2, 2, 1.3, 2.0, 201.6, 202.0, t0=201.7, t1=201.9,
                  attempt=1, seq=2),
    ]
    return recs


def test_merge_is_deterministic_under_record_shuffle():
    base = merge_timeline(_records(), sweep="s")
    rng = random.Random(7)
    for _ in range(5):
        shuffled = _records()
        rng.shuffle(shuffled)
        assert dump_json(merge_timeline(shuffled, sweep="s")) \
            == dump_json(base)


def test_merge_normalizes_timestamps_non_negative():
    doc = merge_timeline(_records(), sweep="s")
    spans = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    assert spans
    assert min(e["ts"] for e in spans) == 0.0
    assert all(e["ts"] >= 0.0 for e in spans)
    assert all(e.get("dur", 0.0) >= 0.0 for e in spans)


def test_merge_track_layout():
    doc = merge_timeline(_records(), sweep="sweep-1")
    assert doc["schema"] == FLEET_TRACE_SCHEMA
    assert doc["sweep"] == "sweep-1"
    assert validate_snapshot(doc) == []
    events = doc["traceEvents"]
    # Host dispatch spans live on pid 0, one tid per worker; worker unit
    # spans live on their own pids (sorted by URL: W1 -> 1, W2 -> 2).
    dispatch = [e for e in events if e["name"].startswith("dispatch")]
    assert {e["pid"] for e in dispatch} == {0}
    assert {e["tid"] for e in dispatch} == {1, 2}
    units = [e for e in events if e["name"].startswith("unit")]
    assert {e["pid"] for e in units} == {1, 2}
    names = {e["name"] for e in events}
    assert "failed dispatch unit 2" in names
    assert "requeue unit 2" in names and "steal unit 2" in names
    process_names = {e["args"]["name"] for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"}
    assert process_names == {"host", f"worker {W1}", f"worker {W2}"}


def test_merge_maps_worker_spans_into_host_time():
    doc = merge_timeline(_records(), sweep="s")
    units = {e["args"]["index"]: e for e in doc["traceEvents"]
             if e["name"].startswith("unit ")}
    dispatches = {e["args"]["index"]: e for e in doc["traceEvents"]
                  if e["name"].startswith("dispatch ")}
    # Offset-corrected unit spans must land inside their dispatch
    # round-trip window (the worker executed between send and arrive).
    for index, unit in units.items():
        d = dispatches[index]
        assert d["ts"] <= unit["ts"]
        assert unit["ts"] + unit["dur"] <= d["ts"] + d["dur"] + 1e-6


def test_merge_dedupes_joined_unit_spans():
    # A dedup-joined retry returns the owner's exec window verbatim;
    # the timeline must show the computation once.
    first = _dispatch(W1, 0, 0.0, 1.0, 100.2, 100.8, t0=100.3, t1=100.7)
    joined = _dispatch(W1, 0, 2.0, 2.5, 102.2, 102.4, t0=100.3, t1=100.7,
                       attempt=1)
    doc = merge_timeline([first, joined])
    units = [e for e in doc["traceEvents"] if e["name"] == "unit 0"]
    assert len(units) == 1
    dispatches = [e for e in doc["traceEvents"]
                  if e["name"] == "dispatch unit 0"]
    assert len(dispatches) == 2


def test_merge_empty_records():
    doc = merge_timeline([])
    assert validate_snapshot(doc) == []
    assert all(e["ph"] == "M" for e in doc["traceEvents"])


# --------------------------------------------------------------------- #
# collector
# --------------------------------------------------------------------- #
def test_collector_extracts_worker_sections():
    collector = FleetTraceCollector()
    collector.record_dispatch(
        W1, 3, 0, 7, 1.0, 2.0,
        {"telemetry": {"t_recv": 10.0, "t_reply": 11.0},
         "exec": {"t0": 10.2, "t1": 10.8, "seconds": 0.6}})
    collector.record_dispatch(W1, 4, 0, 8, 3.0, 4.0, {})  # old worker
    assert collector.records[0]["t_recv"] == 10.0
    assert collector.records[0]["t0"] == 10.2
    assert collector.records[1]["t_recv"] is None
    doc = merge_timeline(collector.records)
    assert validate_snapshot(doc) == []


# --------------------------------------------------------------------- #
# metrics aggregation
# --------------------------------------------------------------------- #
def _counter_snap(value):
    return {"schema": "repro.telemetry/1", "metrics": [
        {"name": "repro_worker_units_executed_total", "type": "counter",
         "help": "units", "label_names": [],
         "samples": [{"labels": {}, "value": value}]}]}


def test_aggregate_sums_counters():
    agg = aggregate_snapshots([_counter_snap(3), _counter_snap(4)])
    assert agg["schema"] == "repro.telemetry/1"
    [family] = agg["metrics"]
    assert family["samples"][0]["value"] == 7


def test_aggregate_sums_histograms():
    def snap(counts, total, s):
        return {"schema": "repro.telemetry/1", "metrics": [
            {"name": "repro_worker_unit_seconds", "type": "histogram",
             "help": "", "label_names": [],
             "samples": [{"labels": {},
                          "buckets": [{"le": 1.0, "count": counts[0]},
                                      {"le": 5.0, "count": counts[1]}],
                          "count": total, "sum": s}]}]}
    agg = aggregate_snapshots([snap((1, 2), 2, 0.5), snap((0, 3), 3, 4.0)])
    [family] = agg["metrics"]
    [sample] = family["samples"]
    assert [b["count"] for b in sample["buckets"]] == [1, 5]
    assert sample["count"] == 5
    assert sample["sum"] == pytest.approx(4.5)


def test_aggregate_rejects_incompatible_fleets():
    bad = _counter_snap(1)
    bad["metrics"][0]["type"] = "gauge"
    with pytest.raises(ValueError):
        aggregate_snapshots([_counter_snap(1), bad])


def test_aggregate_is_deterministic():
    snaps = [_counter_snap(1), _counter_snap(2)]
    assert dump_json(aggregate_snapshots(snaps)) \
        == dump_json(aggregate_snapshots(list(reversed(snaps))))
