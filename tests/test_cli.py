"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_describe(capsys):
    assert main(["describe"]) == 0
    out = capsys.readouterr().out
    for name in ("water", "string", "ocean", "cholesky"):
        assert name in out
    assert "dash" in out and "ipsc860" in out


def test_run_tiny(capsys):
    assert main(["run", "--app", "water", "--scale", "tiny",
                 "--procs", "2"]) == 0
    out = capsys.readouterr().out
    assert "water on ipsc860" in out
    assert "elapsed" in out and "locality_pct" in out


def test_run_with_switches(capsys):
    assert main(["run", "--app", "ocean", "--scale", "tiny", "--procs", "2",
                 "--level", "no_locality", "--no-broadcast",
                 "--serial-fetches", "--target-tasks", "2"]) == 0
    out = capsys.readouterr().out
    assert "no_locality" in out
    assert "no-broadcast" in out


def test_sweep_tiny(capsys):
    assert main(["sweep", "--app", "cholesky", "--scale", "tiny",
                 "--machine", "dash", "--procs", "1", "2"]) == 0
    out = capsys.readouterr().out
    assert "execution times" in out
    assert "task locality" in out


def test_analyze_tiny(capsys):
    assert main(["analyze", "--app", "string", "--scale", "tiny",
                 "--procs", "4"]) == 0
    out = capsys.readouterr().out
    assert "critical_path_s" in out
    assert "max_speedup" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--app", "nope"])


def test_run_trace_out_writes_jsonl(tmp_path, capsys):
    import json

    path = tmp_path / "trace.jsonl"
    assert main(["run", "--app", "water", "--scale", "tiny", "--procs", "2",
                 "--trace-out", str(path)]) == 0
    out = capsys.readouterr().out
    assert "trace" in out and str(path) in out
    lines = path.read_text().strip().splitlines()
    assert lines
    record = json.loads(lines[0])
    assert {"time", "category", "label"} <= set(record)


def test_run_trace_out_writes_chrome_json(tmp_path, capsys):
    import json

    path = tmp_path / "trace.json"
    assert main(["run", "--app", "ocean", "--scale", "tiny", "--procs", "2",
                 "--machine", "dash", "--trace-out", str(path)]) == 0
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_profile_command(tmp_path, capsys):
    import json

    snap = tmp_path / "profile.json"
    trace = tmp_path / "trace.json"
    assert main(["profile", "--app", "water", "--scale", "tiny",
                 "--procs", "2", "--json", str(snap),
                 "--trace-out", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "communication matrix" in out
    assert "hot objects" in out
    doc = json.loads(snap.read_text())
    assert doc["schema"] == "repro.obs/4"
    assert doc["comm_matrix"]["total_messages"] == \
        doc["metrics"]["total_messages"]
    chrome = json.loads(trace.read_text())
    assert any(e.get("ph") == "X" for e in chrome["traceEvents"])


def test_profile_command_dash(capsys):
    assert main(["profile", "--app", "ocean", "--scale", "tiny",
                 "--machine", "dash", "--procs", "2"]) == 0
    out = capsys.readouterr().out
    assert "per-processor utilization" in out


def test_run_profile_flags(tmp_path, capsys):
    import json

    snap = tmp_path / "p.json"
    assert main(["run", "--app", "water", "--scale", "tiny", "--procs", "2",
                 "--profile", "--profile-json", str(snap)]) == 0
    out = capsys.readouterr().out
    assert "elapsed" in out                  # the normal metrics block
    assert "communication matrix" in out     # plus the profile report
    assert json.loads(snap.read_text())["schema"] == "repro.obs/4"


def test_sweep_json(tmp_path, capsys):
    import json

    path = tmp_path / "sweep.json"
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "2", "--json", str(path)]) == 0
    doc = json.loads(path.read_text())
    assert doc["schema"] == "repro.sweep/1"
    levels = {r["level"] for r in doc["rows"]}
    assert levels == {"locality", "no_locality"}
    assert all("elapsed" in r["metrics"] for r in doc["rows"])


def test_check_clean_app(capsys):
    # Default --machine both: access check on each machine, then replays
    # and the dash/ipsc860/stripped cross-check.
    assert main(["check", "--app", "string", "--procs", "2"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert "determinism" in out
    assert "cross-check" in out


def test_check_no_determinism_flag(capsys):
    assert main(["check", "--app", "string", "--procs", "2",
                 "--machine", "dash", "--no-determinism"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert "determinism" not in out


def test_check_flags_misdeclared_app(capsys):
    assert main(["check", "--app", "misdeclared", "--procs", "2"]) == 1
    out = capsys.readouterr().out
    assert "ACCESS VIOLATION" in out
    assert "smooth.1" in out and "cell0" in out
    assert "RACE" in out


def test_check_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["check", "--app", "nope"])


@pytest.mark.parametrize("command", ["run", "profile"])
def test_bogus_app_fails_listing_valid_names(command, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([command, "--app", "bogus", "--scale", "tiny", "--procs", "2"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    for name in ("water", "string", "ocean", "cholesky"):
        assert name in err


@pytest.mark.parametrize("cmd_name", ["cmd_run", "cmd_profile"])
def test_experiment_error_lists_valid_apps(cmd_name, capsys, monkeypatch):
    # Belt and braces behind the argparse choices guard: an
    # ExperimentError from the experiment layer (e.g. a programmatic
    # caller with a bad name) still produces the app listing, not a
    # traceback.
    import argparse

    from repro.errors import ExperimentError
    import repro.lab.experiments as experiments

    def boom(*_args, **_kwargs):
        raise ExperimentError("unknown application/scale ('bogus', 'tiny')")

    monkeypatch.setattr(experiments, "make_application", boom)
    if cmd_name == "cmd_run":
        from repro.__main__ import cmd_run as cmd

        args = argparse.Namespace(
            app="bogus", machine="ipsc860", scale="tiny", procs=2,
            level="locality", no_broadcast=False, no_replication=False,
            serial_fetches=False, target_tasks=1, eager_update=False,
            work_free=False, trace_out=None, profile=False,
            profile_json=None, max_sim_time=None)
    else:
        from repro.obs.cli import cmd_profile as cmd

        args = argparse.Namespace(
            app="bogus", machine="ipsc860", scale="tiny", procs=2,
            level="locality", no_broadcast=False, no_replication=False,
            serial_fetches=False, target_tasks=1, eager_update=False,
            json=None, trace_out=None, samples=50, sample_interval=None,
            max_sim_time=None)
    assert cmd(args) == 2
    err = capsys.readouterr().err
    assert "valid applications" in err
    for name in ("water", "string", "ocean", "cholesky"):
        assert name in err


def test_profile_command_reports_critical_path_and_attribution(capsys):
    assert main(["profile", "--app", "water", "--scale", "tiny",
                 "--procs", "2"]) == 0
    out = capsys.readouterr().out
    assert "critical path" in out
    assert "per-optimization attribution" in out
    assert "main processor" in out


def test_describe_json_is_the_service_catalog(capsys):
    import json

    from repro.serve.api import describe_catalog

    assert main(["describe", "--json"]) == 0
    out = capsys.readouterr().out
    assert json.loads(out) == describe_catalog()
    # Canonical form: re-serializing sorted changes nothing.
    assert json.loads(out) == json.loads(
        json.dumps(json.loads(out), sort_keys=True))


def test_check_snapshot_mode(tmp_path, capsys):
    import json

    from repro.serve import RunRequest, submit

    path = tmp_path / "serve.json"
    path.write_text(submit(RunRequest(app="water", scale="tiny",
                                      procs=2)).text)
    assert main(["check", "--snapshot", str(path)]) == 0
    assert "repro.serve/1" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "repro.serve/1"}))
    assert main(["check", "--snapshot", str(bad)]) == 1
    assert "FAILED" in capsys.readouterr().out

    assert main(["check", "--snapshot", str(tmp_path / "missing.json")]) == 2


def test_check_without_app_or_snapshot_is_exit_2(capsys):
    assert main(["check"]) == 2
    assert "--app" in capsys.readouterr().err


def test_serve_parser_validates_arguments(capsys):
    assert main(["serve", "--workers", "0"]) == 2
    assert "--workers" in capsys.readouterr().err
    assert main(["serve", "--sweep-jobs", "0"]) == 2
    assert "--sweep-jobs" in capsys.readouterr().err
    assert main(["serve", "--timeout", "0"]) == 2
    assert "--timeout" in capsys.readouterr().err


def test_serve_foreground_announces_url(capsys):
    # Run the real CLI path with the serve thread stopped from a timer:
    # it must print the bound URL before blocking.
    import re
    import threading

    import repro.serve.server as server_mod

    started = []
    original_join = server_mod.ServeServer.join

    def join_and_stop(self):
        started.append(self)
        threading.Timer(0.05, self.stop).start()
        original_join(self)

    server_mod.ServeServer.join = join_and_stop
    try:
        assert main(["serve", "--port", "0", "--workers", "1"]) == 0
    finally:
        server_mod.ServeServer.join = original_join
    out = capsys.readouterr().out
    match = re.search(r"listening on (http://127\.0\.0\.1:\d+)", out)
    assert match, out
    assert started and started[0].port != 0
