"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def test_describe(capsys):
    assert main(["describe"]) == 0
    out = capsys.readouterr().out
    for name in ("water", "string", "ocean", "cholesky"):
        assert name in out
    assert "dash" in out and "ipsc860" in out


def test_run_tiny(capsys):
    assert main(["run", "--app", "water", "--scale", "tiny",
                 "--procs", "2"]) == 0
    out = capsys.readouterr().out
    assert "water on ipsc860" in out
    assert "elapsed" in out and "locality_pct" in out


def test_run_with_switches(capsys):
    assert main(["run", "--app", "ocean", "--scale", "tiny", "--procs", "2",
                 "--level", "no_locality", "--no-broadcast",
                 "--serial-fetches", "--target-tasks", "2"]) == 0
    out = capsys.readouterr().out
    assert "no_locality" in out
    assert "no-broadcast" in out


def test_sweep_tiny(capsys):
    assert main(["sweep", "--app", "cholesky", "--scale", "tiny",
                 "--machine", "dash", "--procs", "1", "2"]) == 0
    out = capsys.readouterr().out
    assert "execution times" in out
    assert "task locality" in out


def test_analyze_tiny(capsys):
    assert main(["analyze", "--app", "string", "--scale", "tiny",
                 "--procs", "4"]) == 0
    out = capsys.readouterr().out
    assert "critical_path_s" in out
    assert "max_speedup" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--app", "nope"])
