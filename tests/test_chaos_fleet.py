"""Tests for the self-healing fleet: checkpoint corruption recovery,
response integrity verification, graceful drain, and the end-to-end
``repro chaos-fleet`` verdict (byte-identity under injected faults).
"""

import json
import threading

import pytest

from repro.apps import MachineKind
from repro.errors import ExperimentError
from repro.faults import InfraFaultSpec, named_infra_spec
from repro.fleet import (
    CheckpointCorruption,
    CheckpointJournal,
    RemoteBackend,
    SweepUnit,
    run_units_resilient,
    sweep_units,
)
from repro.fleet.worker import WorkerClient, WorkerError, WorkerServer
from repro.telemetry.metrics import MetricsRegistry
from repro.__main__ import main

from tests.test_fleet_distributed import _serial_text, _text_for


# --------------------------------------------------------------------- #
# checkpoint corruption recovery
# --------------------------------------------------------------------- #
def _truncate_file(path):
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text[: len(text) // 2])


def _bitflip_metrics(path):
    """Valid JSON, valid unit_key, but the payload no longer matches the
    stored checksum — a bit flip that survives the JSON parser."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    doc["metrics"]["elapsed"] = doc["metrics"]["elapsed"] + 1.0
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)


def test_journal_load_raises_on_torn_and_bitflipped_files(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "j"))
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    journal.open_sweep(units)
    journal.record(0, units[0], {"elapsed": 1.5})
    journal.record(1, units[1], {"elapsed": 2.5})
    _truncate_file(str(tmp_path / "j" / "unit-000000.json"))
    _bitflip_metrics(str(tmp_path / "j" / "unit-000001.json"))
    with pytest.raises(CheckpointCorruption, match="torn or truncated"):
        journal.load(0, units[0])
    with pytest.raises(CheckpointCorruption, match="checksum"):
        journal.load(1, units[1])
    # CheckpointCorruption stays inside the repo's error taxonomy.
    assert isinstance(CheckpointCorruption("x"), ExperimentError)


def test_recover_quarantines_and_returns_none(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "j"))
    units = sweep_units("water", MachineKind.IPSC860, [1], "tiny")
    journal.open_sweep(units)
    journal.record(0, units[0], {"elapsed": 1.5})
    _truncate_file(str(tmp_path / "j" / "unit-000000.json"))
    assert journal.recover(0, units[0]) is None
    # The corrupt bytes are preserved for post-mortem, out of the
    # journal proper; the index no longer counts as completed.
    assert (tmp_path / "j" / "quarantine" / "unit-000000.json").exists()
    assert 0 not in journal.completed_indices()
    # A fresh record makes the index loadable again.
    journal.record(0, units[0], {"elapsed": 1.5})
    assert journal.load(0, units[0]) == {"elapsed": 1.5}
    # Quarantining the same index twice never clobbers evidence.
    _truncate_file(str(tmp_path / "j" / "unit-000000.json"))
    assert journal.recover(0, units[0]) is None
    assert (tmp_path / "j" / "quarantine" / "unit-000000.json.1").exists()


def test_resume_recovers_corrupt_unit_files_byte_identical(tmp_path):
    """The acceptance scenario: a resume over a journal with one torn
    and one bit-flipped unit file quarantines both, recomputes exactly
    those units, and still produces the serial snapshot byte-for-byte;
    the quarantine counter reconciles with the recomputed-unit count."""
    ckpt = str(tmp_path / "j")
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    run_units_resilient(units, jobs=1, checkpoint=ckpt)
    _truncate_file(str(tmp_path / "j" / "unit-000000.json"))
    _bitflip_metrics(str(tmp_path / "j" / "unit-000002.json"))

    registry = MetricsRegistry()
    outcome = run_units_resilient(units, jobs=1, checkpoint=ckpt,
                                  registry=registry)
    assert outcome.ok

    def count(name):
        return registry.counter(name, "").value()

    quarantined = count("repro_fleet_checkpoint_quarantined_total")
    dispatched = count("repro_fleet_units_dispatched_total")
    assert quarantined == dispatched == 2  # exactly the damaged units
    assert count("repro_fleet_units_resumed_total") == len(units) - 2
    assert _text_for(units, outcome) == _serial_text()
    quarantine_dir = tmp_path / "j" / "quarantine"
    assert sorted(p.name for p in quarantine_dir.iterdir()) == [
        "unit-000000.json", "unit-000002.json"]


# --------------------------------------------------------------------- #
# response integrity: corrupted responses are never merged
# --------------------------------------------------------------------- #
def test_corrupt_responses_are_rejected_never_merged():
    from repro.faults.proxy import ChaosProxy

    worker = WorkerServer(port=0, registry=MetricsRegistry())
    worker.start_background()
    proxy = ChaosProxy(worker.url, InfraFaultSpec(corrupt_rate=1.0))
    proxy.start_background()
    registry = MetricsRegistry()
    try:
        units = sweep_units("water", MachineKind.IPSC860, [1], "tiny")
        backend = RemoteBackend([proxy.url])
        outcome = run_units_resilient(units, jobs=1, retries=0,
                                      partial=True, registry=registry,
                                      backend=backend)
    finally:
        proxy.stop()
        worker.stop()
    # Every response was corrupted in transit; every one was rejected by
    # checksum verification and none produced merged metrics.
    assert not outcome.ok
    assert all(m is None for m in outcome.metrics)
    corrupt = registry.counter(
        "repro_fleet_corrupt_responses_total", "").value()
    dispatched = registry.counter(
        "repro_fleet_units_dispatched_total", "").value()
    assert corrupt == dispatched == len(units)
    assert registry.counter(
        "repro_fleet_units_completed_total", "").value() == 0


# --------------------------------------------------------------------- #
# graceful drain: 503 + Retry-After, in-flight units finish
# --------------------------------------------------------------------- #
def test_draining_worker_refuses_with_503_retry_after():
    worker = WorkerServer(port=0, registry=MetricsRegistry())
    worker.start_background()
    try:
        assert worker.begin_unit()  # an in-flight unit holds the drain
        drainer = threading.Thread(target=worker.drain,
                                   kwargs={"timeout": 30.0})
        drainer.start()
        try:
            client = WorkerClient(worker.url, timeout=10)
            unit = SweepUnit("water", "ipsc860", "locality", 1, "tiny")
            with pytest.raises(WorkerError) as info:
                client.run_unit("sweep-drain", 1, 0, unit)
            assert info.value.status == 503
            assert info.value.retry_after == 1
            assert "draining" in str(info.value).lower()
            assert worker.registry.counter(
                "repro_worker_drain_refusals_total", "").value() == 1
        finally:
            worker.end_unit()  # the in-flight unit completes
            drainer.join(timeout=30)
        assert not drainer.is_alive()
    finally:
        if not worker.draining:
            worker.stop()


def test_sweep_survives_mid_sweep_drain_byte_identical():
    """Drain one of two (clean, un-proxied) workers mid-sweep: the host
    requeues the refused dispatches on the survivor and the merged bytes
    do not change."""
    from repro.faults.chaosfleet import run_chaos_fleet

    doc = run_chaos_fleet("water", MachineKind.IPSC860, [1, 2], "tiny",
                          InfraFaultSpec(), n_workers=2, retries=4,
                          drain_after=1)
    assert doc["verdicts"] == {"completed": True, "byte_identical": True}
    assert doc["sweep"]["drained"] is True
    host = doc["counters"]["host"]
    worker = doc["counters"]["worker"]
    # The drain was observed on both sides of the wire, or the sweep
    # finished on the survivor before any dispatch was refused.
    assert host["drained_dispatches"] == worker["drain_refusals"]


# --------------------------------------------------------------------- #
# end-to-end: repro chaos-fleet
# --------------------------------------------------------------------- #
def test_chaos_fleet_under_faults_is_byte_identical():
    from repro.faults.chaosfleet import run_chaos_fleet
    from repro.obs.schema import validate_snapshot

    spec = named_infra_spec("lossy", seed=3)  # truncate + corrupt
    doc = run_chaos_fleet("water", MachineKind.IPSC860, [1, 2], "tiny",
                          spec, n_workers=2, retries=8, drain_after=0)
    assert validate_snapshot(doc) == []
    assert doc["schema"] == "repro.chaos/2"
    assert doc["verdicts"] == {"completed": True, "byte_identical": True}
    host = doc["counters"]["host"]
    proxy = doc["counters"]["proxy"]
    # Reconciliation: with healthy upstreams every truncated or
    # corrupted relay is exactly one host-side checksum rejection.
    assert host["corrupt_responses"] == (proxy["responses_corrupted"]
                                         + proxy["responses_truncated"])
    # Every rejected response was retried back to success.
    assert host["units_retried"] >= host["corrupt_responses"]
    assert host["units_completed"] == doc["sweep"]["units"]
    assert doc["counters"]["worker"]["units_executed"] >= \
        doc["sweep"]["units"]


def test_chaos_fleet_validates_arguments():
    from repro.faults.chaosfleet import run_chaos_fleet

    with pytest.raises(ExperimentError, match="at least one worker"):
        run_chaos_fleet("water", MachineKind.IPSC860, [1], "tiny",
                        InfraFaultSpec(), n_workers=0)
    with pytest.raises(ExperimentError, match="workers >= 2"):
        run_chaos_fleet("water", MachineKind.IPSC860, [1], "tiny",
                        InfraFaultSpec(), n_workers=1, drain_after=1)


def test_chaos_fleet_schema_validation_rejects_malformed_docs():
    from repro.obs.schema import validate_chaos_fleet

    valid = {
        "schema": "repro.chaos/2",
        "sweep": {"app": "water", "machine": "ipsc860", "scale": "tiny",
                  "units": 4, "workers": 2},
        "fault_spec": {"seed": 0},
        "counters": {"host": {"units_dispatched": 4}, "proxy": {},
                     "worker": {}},
        "verdicts": {"completed": True, "byte_identical": True},
    }
    assert validate_chaos_fleet(valid) == []
    missing_group = json.loads(json.dumps(valid))
    del missing_group["counters"]["proxy"]
    assert validate_chaos_fleet(missing_group)
    negative = json.loads(json.dumps(valid))
    negative["counters"]["host"]["units_dispatched"] = -1
    assert validate_chaos_fleet(negative)
    bad_verdict = json.loads(json.dumps(valid))
    bad_verdict["verdicts"]["completed"] = "yes"
    assert validate_chaos_fleet(bad_verdict)


def test_cli_chaos_fleet_smoke(tmp_path, capsys):
    out = tmp_path / "verdict.json"
    trace = tmp_path / "trace.json"
    assert main(["chaos-fleet", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "2", "--plan", "flaky", "--seed", "1",
                 "--retries", "8", "--drain-after", "0",
                 "--json", str(out), "--trace-out", str(trace)]) == 0
    printed = capsys.readouterr().out
    assert "chaos-fleet verdict: PASS" in printed
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.chaos/2"
    assert doc["verdicts"] == {"completed": True, "byte_identical": True}
    timeline = json.loads(trace.read_text())
    assert timeline["traceEvents"]


def test_cli_chaos_fleet_rejects_bad_arguments(capsys):
    assert main(["chaos-fleet", "--workers", "0"]) == 2
    assert "--workers" in capsys.readouterr().err
    assert main(["chaos-fleet", "--stall", "nonsense"]) == 2
    assert "START:END:HOLD_S" in capsys.readouterr().err
