"""Tests for the heterogeneous workstation-farm platform."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machines.workstations import BusNetwork, EthernetParams, WorkstationFarm
from repro.runtime import RuntimeOptions
from repro.runtime.message_passing import MessagePassingRuntime
from repro.sim import Simulator

from tests.helpers import assert_matches_stripped, independent_program, reduction_program


# --------------------------------------------------------------------- #
# the bus network
# --------------------------------------------------------------------- #
def make_bus(n=4, **overrides):
    sim = Simulator()
    params = EthernetParams(**overrides) if overrides else EthernetParams()
    return sim, BusNetwork(sim, n, params)


def test_point_to_point_delivery():
    sim, bus = make_bus()
    got = []
    bus.send(0, 1, 10_000, "data", on_delivered=got.append, payload="x")
    sim.run()
    assert got == ["x"]
    p = bus.params
    assert sim.now == pytest.approx(p.alpha_send + 10_000 * p.per_byte + p.alpha_recv)


def test_all_traffic_serializes_on_the_bus():
    """Unlike the hypercube, disjoint pairs cannot overlap."""
    sim, bus = make_bus()
    bus.send(0, 1, 100_000, "a")
    bus.send(2, 3, 100_000, "b")
    sim.run()
    single = bus.send_occupancy(100_000)
    assert sim.now >= 2 * single


def test_broadcast_is_one_bus_slot():
    sim, bus = make_bus(n=8)
    arrived = []
    bus.broadcast(0, 50_000, "x", on_delivered=lambda n, p: arrived.append(n))
    sim.run()
    assert sorted(arrived) == list(range(1, 8))
    # One transmission, not 7: elapsed ≈ a single send.
    assert sim.now == pytest.approx(bus.send_occupancy(50_000)
                                    + bus.params.alpha_recv, rel=0.01)


def test_broadcast_to_subset_and_self():
    sim, bus = make_bus(n=8)
    arrived = []
    done = bus.broadcast(2, 1000, "x", on_delivered=lambda n, p: arrived.append(n),
                         targets=[2, 3, 4])
    sim.run()
    assert sorted(arrived) == [3, 4]
    assert done.fired


def test_bus_stats():
    sim, bus = make_bus()
    bus.send(0, 1, 500, "request")
    sim.run()
    assert bus.stats.counters["net.messages.request"].value == 1
    assert bus.stats.accumulators["net.bytes"].total == 500


# --------------------------------------------------------------------- #
# the farm
# --------------------------------------------------------------------- #
def test_farm_validation():
    with pytest.raises(MachineError):
        WorkstationFarm([])
    with pytest.raises(MachineError):
        WorkstationFarm([1.0, -2.0])


def test_compute_seconds_scaling():
    farm = WorkstationFarm([1.0, 2.0, 0.5])
    assert farm.compute_seconds(0, 1.0) == pytest.approx(1.0)
    assert farm.compute_seconds(1, 1.0) == pytest.approx(0.5)
    assert farm.compute_seconds(2, 1.0) == pytest.approx(2.0)
    assert "speeds" in farm.describe()


def test_jade_program_runs_unmodified_on_the_farm():
    """§1: Jade programs port without modification between platforms."""
    program = reduction_program(num_workers=6, iterations=2)
    farm = WorkstationFarm([1.0, 1.5, 0.7, 1.2])
    runtime = MessagePassingRuntime(program, farm, RuntimeOptions())
    metrics = runtime.run()
    assert_matches_stripped(program, metrics)
    assert metrics.tasks_executed == 12


def test_heterogeneous_speeds_change_elapsed_time():
    fast = WorkstationFarm([4.0, 4.0, 4.0, 4.0])
    slow = WorkstationFarm([1.0, 1.0, 1.0, 1.0])
    m_fast = MessagePassingRuntime(
        independent_program(8, cost=50e-3), fast, RuntimeOptions()).run()
    m_slow = MessagePassingRuntime(
        independent_program(8, cost=50e-3), slow, RuntimeOptions()).run()
    assert m_fast.elapsed < m_slow.elapsed


def test_count_based_balancing_suffers_on_skewed_farms():
    """The Jade scheduler balances task counts, not work: a farm with one
    slow node finishes later than its aggregate speed would allow."""
    balanced = WorkstationFarm([1.0, 1.0, 1.0, 1.0])
    skewed = WorkstationFarm([1.45, 1.45, 1.0, 0.1])  # same total speed
    prog = lambda: independent_program(12, cost=100e-3)
    m_bal = MessagePassingRuntime(prog(), balanced, RuntimeOptions()).run()
    m_skew = MessagePassingRuntime(prog(), skewed, RuntimeOptions()).run()
    assert m_skew.elapsed > m_bal.elapsed * 1.5


def test_farm_broadcast_helps_wide_reads():
    """Ethernet broadcast makes adaptive broadcast even more valuable."""
    program_on = reduction_program(num_workers=6, iterations=4, cost=5e-3)
    program_off = reduction_program(num_workers=6, iterations=4, cost=5e-3)
    on = MessagePassingRuntime(
        program_on, WorkstationFarm([1.0] * 6),
        RuntimeOptions(adaptive_broadcast=True)).run()
    off = MessagePassingRuntime(
        program_off, WorkstationFarm([1.0] * 6),
        RuntimeOptions(adaptive_broadcast=False)).run()
    assert on.broadcasts > 0
    assert on.elapsed <= off.elapsed
