"""Property-based fuzzing of the full runtime stack.

Random Jade programs — random object counts, access patterns, costs,
placements and serial sections — are executed through both runtimes under
random optimization settings.  Every run must:

* terminate (no deadlock);
* reproduce the stripped serial execution's numeric results exactly
  (Jade's central guarantee, via the version-coherence checks the
  message-passing runtime performs on every task);
* be deterministic (same program + options ⇒ same elapsed time).

This is the test that would catch scheduler/communicator protocol bugs —
lost wakeups, wrong-version fetches, broadcast/eager races — anywhere in
the stack.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AccessSpec, JadeBuilder, run_stripped
from repro.runtime import (
    LocalityLevel,
    RuntimeOptions,
    run_message_passing,
    run_shared_memory,
)


@st.composite
def random_jade_program(draw):
    """A random but well-formed Jade program with computable bodies."""
    n_objects = draw(st.integers(min_value=1, max_value=6))
    n_tasks = draw(st.integers(min_value=1, max_value=25))
    n_procs_hint = draw(st.integers(min_value=1, max_value=6))
    jade = JadeBuilder()
    objects = [
        jade.object(
            f"o{i}",
            initial=np.full(4, float(i)),
            sim_nbytes=draw(st.sampled_from([64, 4096, 100_000])),
            home=draw(st.one_of(st.none(), st.integers(0, n_procs_hint - 1))),
        )
        for i in range(n_objects)
    ]

    def make_body(read_ids, write_ids, salt):
        def body(ctx):
            acc = float(salt)
            for oid in read_ids:
                acc += float(np.sum(ctx.rd(objects[oid])))
            for oid in write_ids:
                data = ctx.wr(objects[oid])
                data += acc * 0.001
                data[0] = acc
        return body

    for t in range(n_tasks):
        n_decls = draw(st.integers(min_value=1, max_value=min(3, n_objects)))
        chosen = draw(st.lists(st.integers(0, n_objects - 1),
                               min_size=n_decls, max_size=n_decls, unique=True))
        spec = AccessSpec()
        reads, writes = [], []
        for oid in chosen:
            mode = draw(st.sampled_from(["rd", "wr", "rw"]))
            getattr(spec, mode)(objects[oid])
            if mode in ("rd", "rw"):
                reads.append(oid)
            if mode in ("wr", "rw"):
                writes.append(oid)
        serial = draw(st.booleans()) and draw(st.booleans())  # ~25% serial
        cost = draw(st.sampled_from([0.0, 1e-4, 2e-3, 5e-2]))
        if serial:
            # serial() builds its spec from rd/wr/rw lists
            jade.serial(
                f"serial{t}", body=make_body(reads, writes, t),
                rd=[objects[o] for o in reads if o not in writes],
                rw=[objects[o] for o in writes if o in reads],
                wr=[objects[o] for o in writes if o not in reads],
                cost=cost,
            )
        else:
            placement = draw(st.one_of(st.none(), st.integers(0, n_procs_hint - 1)))
            jade.task(f"t{t}", body=make_body(reads, writes, t), spec=spec,
                      cost=cost, placement=placement)
    return jade.finish("fuzz"), n_procs_hint


@st.composite
def random_options(draw):
    return RuntimeOptions(
        locality=draw(st.sampled_from(list(LocalityLevel))),
        replication=draw(st.booleans()),
        adaptive_broadcast=draw(st.booleans()),
        concurrent_fetches=draw(st.booleans()),
        target_tasks_per_processor=draw(st.integers(1, 3)),
        eager_update=draw(st.booleans()),
        seed=draw(st.integers(0, 3)),
    )


def _payloads(program, store):
    return [np.array(store.get(obj.object_id)) for obj in program.registry]


@settings(max_examples=60, deadline=None)
@given(random_jade_program(), random_options(),
       st.integers(min_value=1, max_value=6))
def test_message_passing_fuzz(program_and_hint, options, procs):
    program, _ = program_and_hint
    expected = run_stripped(program)
    metrics = run_message_passing(program, procs, options)
    assert metrics.tasks_executed + metrics.serial_sections_executed == \
        len(program.tasks)
    for obj in program.registry:
        assert np.array_equal(
            expected.payload(obj), metrics.final_store.get(obj.object_id)
        ), f"object {obj.name} differs under {options.describe()} @ {procs}p"


@settings(max_examples=40, deadline=None)
@given(random_jade_program(), st.sampled_from(list(LocalityLevel)),
       st.integers(min_value=1, max_value=6))
def test_shared_memory_fuzz(program_and_hint, level, procs):
    program, _ = program_and_hint
    expected = run_stripped(program)
    metrics = run_shared_memory(program, procs, RuntimeOptions(locality=level))
    for obj in program.registry:
        assert np.array_equal(
            expected.payload(obj), metrics.final_store.get(obj.object_id)
        ), f"object {obj.name} differs at {level} @ {procs}p"


@settings(max_examples=15, deadline=None)
@given(random_jade_program(), random_options(),
       st.integers(min_value=1, max_value=4))
def test_determinism_fuzz(program_and_hint, options, procs):
    """Two executions of equivalent programs take identical simulated time.

    Programs hold live payloads, so the comparison rebuilds from the same
    hypothesis example via the stripped copy trick: run twice on fresh
    machines and compare every metric."""
    program, _ = program_and_hint
    from repro.runtime.workfree import make_work_free

    # The work-free transform shares the registry but has no payload
    # state, so it can run twice; determinism of the full stack is also
    # covered by the app-level determinism tests.
    wf = make_work_free(program)
    opts = options.but(work_free=True)
    a = run_message_passing(wf, procs, opts)
    b = run_message_passing(wf, procs, opts)
    assert a.elapsed == b.elapsed
    assert a.total_messages == b.total_messages
    assert a.tasks_per_processor == b.tasks_per_processor
