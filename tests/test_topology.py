"""Unit + property tests for the hypercube and cluster-mesh topologies."""

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.errors import MachineError, RoutingError
from repro.machines import ClusterMesh, Hypercube


# --------------------------------------------------------------------- #
# hypercube
# --------------------------------------------------------------------- #
def test_hypercube_rejects_non_power_of_two():
    for bad in (0, 3, 6, 12, 24):
        with pytest.raises(MachineError):
            Hypercube(bad)


def test_hypercube_dimension():
    assert Hypercube(1).dimension == 0
    assert Hypercube(2).dimension == 1
    assert Hypercube(32).dimension == 5


def test_neighbors_are_one_bit_apart():
    cube = Hypercube(16)
    for node in cube.nodes():
        for nb in cube.neighbors(node):
            assert cube.distance(node, nb) == 1


def test_route_is_shortest_path():
    cube = Hypercube(16)
    for src in cube.nodes():
        for dst in cube.nodes():
            path = cube.route(src, dst)
            assert path[0] == src and path[-1] == dst
            assert len(path) - 1 == cube.distance(src, dst)
            for a, b in zip(path, path[1:]):
                assert cube.distance(a, b) == 1


def test_distance_matches_networkx_shortest_path():
    cube = Hypercube(32)
    graph = nx.Graph()
    for node in cube.nodes():
        for nb in cube.neighbors(node):
            graph.add_edge(node, nb)
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    for a in cube.nodes():
        for b in cube.nodes():
            assert cube.distance(a, b) == lengths[a][b]


def test_route_out_of_range_rejected():
    cube = Hypercube(8)
    with pytest.raises(RoutingError):
        cube.route(0, 8)
    with pytest.raises(RoutingError):
        cube.distance(-1, 0)


def test_broadcast_schedule_reaches_all_nodes_once():
    cube = Hypercube(32)
    for root in (0, 5, 31):
        stages = cube.broadcast_schedule(root)
        assert len(stages) == cube.dimension
        seen = {root}
        for stage in stages:
            for snd, rcv in stage:
                assert snd in seen
                assert rcv not in seen
                seen.add(rcv)
        assert seen == set(cube.nodes())


@given(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=63),
       st.integers(min_value=0, max_value=63))
def test_distance_is_a_metric(dim_exp, a, b):
    size = 2 ** dim_exp
    cube = Hypercube(size)
    a %= size
    b %= size
    d = cube.distance(a, b)
    assert d == cube.distance(b, a)
    assert (d == 0) == (a == b)
    assert d <= cube.dimension


# --------------------------------------------------------------------- #
# cluster mesh
# --------------------------------------------------------------------- #
def test_cluster_assignment():
    mesh = ClusterMesh(num_processors=32, cluster_size=4)
    assert mesh.num_clusters == 8
    assert [mesh.cluster_of(p) for p in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
    assert list(mesh.processors_in_cluster(7)) == [28, 29, 30, 31]


def test_partial_last_cluster():
    mesh = ClusterMesh(num_processors=6, cluster_size=4)
    assert mesh.num_clusters == 2
    assert list(mesh.processors_in_cluster(1)) == [4, 5]


def test_same_cluster_predicate():
    mesh = ClusterMesh(num_processors=16, cluster_size=4)
    assert mesh.same_cluster(0, 3)
    assert not mesh.same_cluster(3, 4)


def test_mesh_distance_zero_within_cluster():
    mesh = ClusterMesh(num_processors=32, cluster_size=4)
    assert mesh.mesh_distance(0, 1) == 0
    assert mesh.mesh_distance(0, 31) > 0


def test_single_processor_machine():
    mesh = ClusterMesh(num_processors=1, cluster_size=4)
    assert mesh.num_clusters == 1
    assert mesh.cluster_of(0) == 0


def test_bad_configs_rejected():
    with pytest.raises(MachineError):
        ClusterMesh(num_processors=0)
    with pytest.raises(MachineError):
        ClusterMesh(num_processors=4, cluster_size=0)
    mesh = ClusterMesh(num_processors=4)
    with pytest.raises(MachineError):
        mesh.cluster_of(4)


@given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=8))
def test_every_processor_is_in_its_cluster_range(n, csize):
    mesh = ClusterMesh(num_processors=n, cluster_size=csize)
    for p in range(n):
        assert p in mesh.processors_in_cluster(mesh.cluster_of(p))
