"""Tests for the String application."""

import numpy as np
import pytest

from repro.apps import MachineKind, String, StringConfig
from repro.apps.string_app import _observed_times, _ray_endpoints, _trace
from repro.core import run_stripped
from repro.runtime import RuntimeOptions, run_message_passing, run_shared_memory
from repro.runtime.options import LocalityLevel

from tests.helpers import assert_matches_stripped


def test_ray_tracer_path_lengths_sum_to_ray_length():
    nz, nx = 10, 20
    for ray in _ray_endpoints(nz, nx, 3, 3):
        cells, lengths = _trace(ray, nz, nx)
        z0, x0, z1, x1 = ray
        expect = np.hypot(z1 - z0, x1 - x0)
        assert np.sum(lengths) == pytest.approx(expect, rel=1e-6)
        assert np.all(cells[:, 0] >= 0) and np.all(cells[:, 0] < nz)
        assert np.all(cells[:, 1] >= 0) and np.all(cells[:, 1] < nx)


def test_uniform_model_gives_exact_travel_time():
    nz, nx = 8, 16
    ray = (4.0, 0.0, 4.0, float(nx))
    cells, lengths = _trace(ray, nz, nx)
    # Slowness 1 everywhere: travel time = geometric length.
    assert np.sum(lengths * 1.0) == pytest.approx(nx, rel=1e-6)


def test_program_structure():
    app = String(StringConfig.tiny())
    prog = app.build(4)
    cfg = app.config
    assert len(prog.parallel_tasks) == cfg.iterations * 4
    assert len(prog.serial_sections) == cfg.iterations
    for task in prog.parallel_tasks:
        assert task.locality_object.name.startswith("diff")


def test_paper_config_model_size():
    cfg = StringConfig.paper()
    assert cfg.velocity_nbytes() == 383_528  # §5.3's updated object
    assert cfg.iterations == 6


def test_stripped_time_matches_calibration():
    app = String(StringConfig.paper())
    prog = app.build(8, machine=MachineKind.IPSC860)
    assert prog.total_cost() == pytest.approx(19_629.42, rel=1e-6)


def test_inversion_reduces_residual():
    """SIRT iterations must move the model toward the synthetic truth."""
    app = String(StringConfig(iterations=5))
    prog = app.build(2)
    result = run_stripped(prog)
    # Recompute the residual trajectory: run a single-iteration program
    # and compare its residual to the 5-iteration one.
    app1 = String(StringConfig(iterations=1))
    prog1 = app1.build(2)
    r1 = run_stripped(prog1)
    res_after_1 = r1.payload(prog1.registry.by_name("residual"))[0]
    res_after_5 = result.payload(prog.registry.by_name("residual"))[0]
    assert res_after_5 < res_after_1


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_runs_on_both_machines(nprocs):
    app = String(StringConfig.tiny())
    prog_mp = app.build(nprocs, machine=MachineKind.IPSC860)
    assert_matches_stripped(prog_mp, run_message_passing(prog_mp, nprocs))
    prog_sm = app.build(nprocs, machine=MachineKind.DASH)
    assert_matches_stripped(prog_sm, run_shared_memory(prog_sm, nprocs))


def test_no_task_placement_support():
    app = String(StringConfig.tiny())
    with pytest.raises(ValueError):
        app.build(4, level=LocalityLevel.TASK_PLACEMENT)


def test_full_locality_on_mp():
    app = String(StringConfig.tiny())
    prog = app.build(4)
    metrics = run_message_passing(prog, 4)
    assert metrics.task_locality_pct == pytest.approx(100.0)


def test_velocity_model_broadcasts_after_first_phase():
    app = String(StringConfig(iterations=4))
    prog = app.build(4)
    metrics = run_message_passing(prog, 4)
    assert metrics.broadcasts >= 1
