"""Unit tests for shared objects, the registry and object stores."""

import numpy as np
import pytest

from repro.core import ObjectRegistry, ObjectStore, SharedObject
from repro.errors import SpecificationError


def test_registry_allocates_sequential_ids():
    reg = ObjectRegistry()
    a = reg.create("a")
    b = reg.create("b")
    assert (a.object_id, b.object_id) == (0, 1)
    assert reg.by_id(0) is a
    assert reg.by_name("b") is b
    assert len(reg) == 2


def test_registry_rejects_duplicate_names():
    reg = ObjectRegistry()
    reg.create("a")
    with pytest.raises(SpecificationError):
        reg.create("a")


def test_registry_unknown_lookups_raise():
    reg = ObjectRegistry()
    with pytest.raises(SpecificationError):
        reg.by_id(0)
    with pytest.raises(SpecificationError):
        reg.by_name("missing")


def test_default_sim_nbytes_from_numpy_payload():
    reg = ObjectRegistry()
    obj = reg.create("arr", initial=np.zeros(100, dtype=np.float64))
    assert obj.sim_nbytes == 800


def test_explicit_sim_nbytes_overrides_payload_size():
    """Apps set the paper-scale size while computing on small arrays."""
    reg = ObjectRegistry()
    obj = reg.create("positions", initial=np.zeros(10), sim_nbytes=165_888)
    assert obj.sim_nbytes == 165_888


def test_negative_sim_nbytes_rejected():
    with pytest.raises(SpecificationError):
        SharedObject(0, "x", None, sim_nbytes=-1)


def test_default_sizes_for_scalar_payloads():
    reg = ObjectRegistry()
    assert reg.create("i", initial=7).sim_nbytes == 8
    assert reg.create("none").sim_nbytes == 8
    assert reg.create("lst", initial=[1, 2, 3]).sim_nbytes == 24


def test_store_install_copies_initial_payload():
    reg = ObjectRegistry()
    arr = np.arange(4.0)
    obj = reg.create("a", initial=arr)
    store = ObjectStore()
    store.install(obj)
    store.get(obj.object_id)[0] = 99.0
    assert arr[0] == 0.0  # the descriptor's initial payload is untouched
    assert store.version(obj.object_id) == 0


def test_store_versioning():
    reg = ObjectRegistry()
    obj = reg.create("a", initial=np.zeros(2))
    store = ObjectStore()
    store.install(obj)
    store.bump_version(obj.object_id, 1)
    assert store.version(obj.object_id) == 1
    assert store.has(obj.object_id, version=1)
    assert not store.has(obj.object_id, version=0)


def test_store_install_copy_is_isolated():
    src = ObjectStore("src")
    dst = ObjectStore("dst")
    reg = ObjectRegistry()
    obj = reg.create("a", initial=np.zeros(3))
    src.install(obj)
    payload = src.export(obj.object_id)
    dst.install_copy(obj.object_id, 0, payload)
    dst.get(obj.object_id)[1] = 5.0
    assert src.get(obj.object_id)[1] == 0.0


def test_store_drop_and_has():
    reg = ObjectRegistry()
    obj = reg.create("a", initial=1.0)
    store = ObjectStore()
    store.install(obj)
    assert store.has(obj.object_id)
    store.drop(obj.object_id)
    assert not store.has(obj.object_id)


def test_default_sim_nbytes_recurses_into_nested_containers():
    reg = ObjectRegistry()
    # A list of numpy rows sizes as the sum of the rows, not 8 per element.
    rows = [np.zeros(10), np.zeros(10)]
    assert reg.create("rows", initial=rows).sim_nbytes == 160
    # Nested lists/tuples recurse all the way down.
    nested = [[1, 2], (3.0, 4.0, 5.0)]
    assert reg.create("nested", initial=nested).sim_nbytes == 40
    # Empty containers keep a small nonzero footprint.
    assert reg.create("empty_list", initial=[]).sim_nbytes == 8
    assert reg.create("empty_dict", initial={}).sim_nbytes == 16
    # Dicts charge per-entry overhead plus recursively-sized values.
    assert reg.create("d", initial={"a": np.zeros(4), "b": 1}).sim_nbytes == \
        (8 + 32) + (8 + 8)
    assert reg.create("bytes", initial=b"abcd").sim_nbytes == 4
