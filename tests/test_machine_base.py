"""Unit tests for machine scaffolding: ProcessorSet, MemoryMap, machines."""

import pytest

from repro.errors import MachineError
from repro.machines import DashMachine, Ipsc860Machine, MemoryMap
from repro.machines.base import Machine, ProcessorSet
from repro.sim import Simulator


# --------------------------------------------------------------------- #
# ProcessorSet
# --------------------------------------------------------------------- #
def test_run_on_occupies_and_completes():
    sim = Simulator()
    procs = ProcessorSet(sim, 2)
    done = []
    procs.run_on(0, 1.0, lambda: done.append(sim.now))
    assert procs.is_busy(0)
    assert not procs.is_busy(1)
    sim.run()
    assert done == [1.0]
    assert not procs.is_busy(0)
    assert procs.busy_time(0) == pytest.approx(1.0)
    assert procs.total_busy_time() == pytest.approx(1.0)


def test_double_occupancy_rejected():
    sim = Simulator()
    procs = ProcessorSet(sim, 1)
    procs.run_on(0, 1.0, lambda: None)
    with pytest.raises(MachineError):
        procs.run_on(0, 1.0, lambda: None)


def test_negative_time_and_bad_processor_rejected():
    sim = Simulator()
    procs = ProcessorSet(sim, 1)
    with pytest.raises(MachineError):
        procs.run_on(0, -1.0, lambda: None)
    with pytest.raises(MachineError):
        procs.run_on(1, 1.0, lambda: None)
    with pytest.raises(MachineError):
        ProcessorSet(sim, 0)


# --------------------------------------------------------------------- #
# MemoryMap
# --------------------------------------------------------------------- #
def test_memory_map_round_robin_and_hints():
    mm = MemoryMap(4)
    assert mm.place(0) == 0
    assert mm.place(1) == 1
    assert mm.place(2, home_hint=3) == 3
    assert mm.place(3) == 2  # round-robin continues where it left off
    assert mm.place(0) == 0  # idempotent
    assert mm.home(2) == 3
    assert mm.is_placed(2)
    assert not mm.is_placed(99)


def test_memory_map_hint_wraps():
    mm = MemoryMap(4)
    assert mm.place(0, home_hint=9) == 1


def test_memory_map_unplaced_lookup_raises():
    with pytest.raises(MachineError):
        MemoryMap(2).home(0)


def test_objects_homed_at():
    mm = MemoryMap(2)
    mm.place(0, 0)
    mm.place(1, 1)
    mm.place(2, 0)
    assert mm.objects_homed_at(0) == [0, 2]


# --------------------------------------------------------------------- #
# machines
# --------------------------------------------------------------------- #
def test_dash_machine_describe_and_owner():
    m = DashMachine(8)
    assert "dash" in m.describe()
    home = m.place_object(0, 1000, home_hint=5)
    assert home == 5
    assert m.owner(0) == 5
    assert m.same_cluster(4, 5)
    assert not m.same_cluster(0, 5)


def test_ipsc_machine_encloses_non_power_of_two():
    m = Ipsc860Machine(24)
    assert m.cube.size == 32
    assert m.active_nodes == list(range(24))
    assert "24 of 32" in m.describe()


def test_ipsc_machine_exact_power_of_two():
    m = Ipsc860Machine(8)
    assert m.cube.size == 8
    assert m.cube.dimension == 3


def test_machine_base_requires_processors():
    with pytest.raises(MachineError):
        Machine(0)
