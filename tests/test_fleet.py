"""Tests for ``repro.fleet``: parallel sweeps, determinism, crash surfacing.

All parallel tests use ``jobs=2`` at tiny scale so they stay cheap even on
a single-CPU host (the pool still exercises the real fan-out/merge path;
only the wall-clock benefit needs multiple cores).
"""

import json
import multiprocessing

import pytest

from repro.apps import MachineKind
from repro.errors import ExperimentError
from repro.fleet import (
    SweepUnit,
    default_jobs,
    parallel_locality_sweep,
    run_units,
    sweep_snapshot_doc,
    sweep_units,
    verify_parallel_matches_serial,
)
from repro.lab.experiments import locality_sweep
from repro.obs.snapshot import dump_json
from repro.__main__ import main

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_sweep_units_match_serial_execution_order():
    units = sweep_units("cholesky", MachineKind.IPSC860, [1, 2], "tiny")
    serial_rows = locality_sweep("cholesky", MachineKind.IPSC860, [1, 2],
                                 "tiny")
    assert [(u.level, u.procs) for u in units] == \
        [(r.level, r.procs) for r in serial_rows]
    assert all(u.machine == "ipsc860" and u.scale == "tiny" for u in units)


def test_parallel_rows_match_serial_rows():
    serial = locality_sweep("water", MachineKind.IPSC860, [1, 2], "tiny")
    parallel = parallel_locality_sweep("water", MachineKind.IPSC860, [1, 2],
                                       "tiny", jobs=2)
    assert len(parallel) == len(serial)
    for serial_row, parallel_row in zip(serial, parallel):
        assert (serial_row.level, serial_row.procs) == \
            (parallel_row.level, parallel_row.procs)
        assert parallel_row.metrics.to_json() == serial_row.metrics.to_json()


def test_jobs_one_runs_without_a_pool_and_matches_serial():
    serial = locality_sweep("string", MachineKind.IPSC860, [2], "tiny")
    in_process = parallel_locality_sweep("string", MachineKind.IPSC860, [2],
                                         "tiny", jobs=1)
    assert [r.metrics.to_json() for r in in_process] == \
        [r.metrics.to_json() for r in serial]


def test_verify_helper_passes_on_dash_sweep():
    text = verify_parallel_matches_serial("ocean", MachineKind.DASH, [1, 2],
                                          "tiny", jobs=2)
    doc = json.loads(text)
    assert doc["schema"] == "repro.sweep/1"
    assert doc["app"] == "ocean"
    assert all("events_fired" in row["metrics"] for row in doc["rows"])


def test_snapshot_doc_is_shared_between_paths():
    rows = locality_sweep("water", MachineKind.IPSC860, [1], "tiny")
    doc = sweep_snapshot_doc("water", "ipsc860", "tiny", rows)
    assert doc["schema"] == "repro.sweep/1"
    assert [r["procs"] for r in doc["rows"]] == [1, 1]
    dump_json(doc)  # strict JSON: every value must be finite


def test_worker_exception_surfaces_as_clean_error():
    bad = SweepUnit("no-such-app", "ipsc860", "locality", 2, "tiny")
    with pytest.raises(ExperimentError) as err:
        run_units([bad, bad], jobs=2)
    message = str(err.value)
    assert "no-such-app" in message
    assert "sweep worker failed" in message


def test_worker_exception_surfaces_in_serial_path_too():
    bad = SweepUnit("water", "ipsc860", "locality", 2, "no-such-scale")
    with pytest.raises(ExperimentError, match="no-such-scale"):
        run_units([bad], jobs=1)


def test_rejects_nonpositive_jobs():
    units = sweep_units("water", MachineKind.IPSC860, [1], "tiny")
    with pytest.raises(ExperimentError, match="jobs"):
        run_units(units, jobs=0)


@pytest.mark.skipif(not _HAS_FORK, reason="hard-crash test relies on fork")
def test_hard_worker_crash_surfaces_as_clean_error(monkeypatch):
    from repro.fleet import executor

    monkeypatch.setattr(executor, "_run_unit", _die_hard)
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    with pytest.raises(ExperimentError, match="pool died"):
        executor.run_units(units, jobs=2)


def _die_hard(_indexed):
    import os

    os._exit(13)  # simulate a segfault/OOM kill: no Python-level exception


# --------------------------------------------------------------------- #
# hardened executor: timeouts, pool restarts, partial mode
# --------------------------------------------------------------------- #
def _hang_or_fake(indexed):
    """Worker stand-in: units named 'hang' sleep forever, others return."""
    import time

    from repro.fleet.executor import _WorkerResult

    index, unit = indexed
    if unit.app == "hang":
        time.sleep(300)
    return _WorkerResult(index, metrics={"unit": index})


def _crash_once_then_fake(indexed):
    """Worker stand-in: the 'crash' unit kills its worker exactly once.

    The flag file (smuggled through the unit's ``scale`` field) makes the
    crash transient — the retried run completes — which is exactly the
    failure mode the pool-restart budget exists for.
    """
    import os

    from repro.fleet.executor import _WorkerResult

    index, unit = indexed
    flag = unit.scale
    if unit.app == "crash" and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(13)
    return _WorkerResult(index, metrics={"unit": index})


def _fake_units(apps, scale="tiny"):
    return [SweepUnit(app, "ipsc860", "locality", index + 1, scale)
            for index, app in enumerate(apps)]


def test_resilient_matches_strict_when_clean():
    from repro.fleet import run_units_resilient

    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    strict = run_units(units, jobs=2)
    outcome = run_units_resilient(units, jobs=2, timeout=None, retries=1,
                                  partial=True)
    assert outcome.ok
    assert outcome.pool_restarts == 0
    assert outcome.completed == len(units)
    assert [m.to_json() for m in outcome.metrics] == \
        [m.to_json() for m in strict]


def test_resilient_rejects_bad_timeout_and_retries():
    from repro.fleet import run_units_resilient

    units = sweep_units("water", MachineKind.IPSC860, [1], "tiny")
    with pytest.raises(ExperimentError, match="timeout"):
        run_units_resilient(units, jobs=2, timeout=0.0)
    with pytest.raises(ExperimentError, match="retries"):
        run_units_resilient(units, jobs=2, retries=-1)


def test_partial_records_deterministic_errors_without_aborting():
    from repro.fleet import run_units_resilient

    good = SweepUnit("water", "ipsc860", "locality", 1, "tiny")
    bad = SweepUnit("no-such-app", "ipsc860", "locality", 2, "tiny")
    outcome = run_units_resilient([good, bad], jobs=1, partial=True)
    assert not outcome.ok
    assert outcome.completed == 1
    assert outcome.metrics[0] is not None and outcome.metrics[1] is None
    failure = outcome.failures[0]
    assert failure.index == 1 and failure.reason == "error"
    assert "no-such-app" in failure.detail
    assert "no-such-app" in failure.describe()


@pytest.mark.skipif(not _HAS_FORK, reason="worker-control tests rely on fork")
def test_hung_worker_times_out_and_partial_keeps_the_rest(monkeypatch):
    from repro.fleet import executor

    monkeypatch.setattr(executor, "_run_unit", _hang_or_fake)
    units = _fake_units(["ok", "hang", "ok"])
    outcome = executor.run_units_resilient(units, jobs=2, timeout=2.0,
                                           retries=0, partial=True)
    assert not outcome.ok
    assert [f.reason for f in outcome.failures] == ["timeout"]
    assert outcome.failures[0].index == 1
    assert outcome.metrics[0] == {"unit": 0}
    assert outcome.metrics[1] is None
    assert outcome.metrics[2] == {"unit": 2}


@pytest.mark.skipif(not _HAS_FORK, reason="worker-control tests rely on fork")
def test_hung_worker_aborts_strict_sweep_with_clean_error(monkeypatch):
    from repro.fleet import executor

    monkeypatch.setattr(executor, "_run_unit", _hang_or_fake)
    units = _fake_units(["hang", "ok"])
    with pytest.raises(ExperimentError, match="timed out"):
        executor.run_units_resilient(units, jobs=2, timeout=1.0, retries=0)


@pytest.mark.skipif(not _HAS_FORK, reason="worker-control tests rely on fork")
def test_pool_restart_recovers_from_transient_worker_death(
        monkeypatch, tmp_path):
    from repro.fleet import executor

    monkeypatch.setattr(executor, "_run_unit", _crash_once_then_fake)
    flag = str(tmp_path / "crashed-once")
    units = _fake_units(["ok", "crash", "ok"], scale=flag)
    outcome = executor.run_units_resilient(units, jobs=2, retries=1,
                                           partial=False)
    assert outcome.ok
    assert outcome.pool_restarts == 1
    assert outcome.metrics == [{"unit": 0}, {"unit": 1}, {"unit": 2}]


@pytest.mark.skipif(not _HAS_FORK, reason="worker-control tests rely on fork")
def test_pool_death_past_budget_partial_reports_lost_units(monkeypatch):
    from repro.fleet import executor

    monkeypatch.setattr(executor, "_run_unit", _die_hard)
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    outcome = executor.run_units_resilient(units, jobs=2, retries=0,
                                           partial=True)
    assert not outcome.ok
    assert outcome.completed == 0
    assert outcome.failures and \
        all(f.reason == "pool" for f in outcome.failures)


# --------------------------------------------------------------------- #
# fleet accounting: the dispatch identity and its regression tests
# --------------------------------------------------------------------- #
def _identity_holds(registry) -> bool:
    """dispatched == completed + failed + timed_out + retried."""
    def val(name):
        return registry.counter(name, "").value()

    return val("repro_fleet_units_dispatched_total") == (
        val("repro_fleet_units_completed_total")
        + val("repro_fleet_units_failed_total")
        + val("repro_fleet_units_timed_out_total")
        + val("repro_fleet_units_retried_total"))


def _crash_slow_or_fake(indexed):
    """Worker stand-in: the 'crash' unit sleeps, then kills its worker.

    The sleep lets the other worker finish its fast units first, so when
    the pool dies there are *done* futures queued behind the crash — the
    exact shape the exhausted-budget recovery branch handles.
    """
    import os
    import time

    from repro.fleet.executor import _WorkerResult

    index, unit = indexed
    if unit.app == "crash":
        time.sleep(1.0)
        os._exit(13)
    return _WorkerResult(index, metrics={"unit": index}, pid=os.getpid())


@pytest.mark.skipif(not _HAS_FORK, reason="worker-control tests rely on fork")
def test_exhausted_budget_recovered_units_are_counted(monkeypatch):
    """Regression: units recovered after the restart budget ran out used
    to bypass ``progress.record``, undercounting the completed counter."""
    from repro.fleet import executor
    from repro.telemetry.metrics import MetricsRegistry

    monkeypatch.setattr(executor, "_run_unit", _crash_slow_or_fake)
    registry = MetricsRegistry()
    units = _fake_units(["crash", "ok", "ok"])
    outcome = executor.run_units_resilient(units, jobs=2, retries=0,
                                           partial=True, registry=registry)
    assert not outcome.ok
    assert outcome.completed == 2
    assert [f.reason for f in outcome.failures] == ["pool"]
    completed = registry.counter("repro_fleet_units_completed_total", "")
    assert completed.value() == 2  # the recovered units count
    assert _identity_holds(registry)


def test_errored_units_bump_failed_counter_and_identity_holds():
    """Regression: a unit whose simulation raised incremented no fleet
    metric, so dispatched never reconciled with the outcome counters."""
    from repro.fleet import run_units_resilient
    from repro.telemetry.metrics import MetricsRegistry

    registry = MetricsRegistry()
    good = SweepUnit("water", "ipsc860", "locality", 1, "tiny")
    bad = SweepUnit("no-such-app", "ipsc860", "locality", 2, "tiny")
    outcome = run_units_resilient([good, bad], jobs=1, partial=True,
                                  registry=registry)
    assert not outcome.ok and outcome.completed == 1
    assert registry.counter(
        "repro_fleet_units_failed_total", "").value() == 1
    assert registry.counter(
        "repro_fleet_units_dispatched_total", "").value() == 2
    assert _identity_holds(registry)


@pytest.mark.skipif(not _HAS_FORK, reason="worker-control tests rely on fork")
def test_identity_holds_across_timeout_and_requeue(monkeypatch):
    from repro.fleet import executor
    from repro.telemetry.metrics import MetricsRegistry

    monkeypatch.setattr(executor, "_run_unit", _hang_or_fake)
    registry = MetricsRegistry()
    units = _fake_units(["ok", "hang", "ok"])
    outcome = executor.run_units_resilient(units, jobs=2, timeout=2.0,
                                           retries=0, partial=True,
                                           registry=registry)
    assert not outcome.ok
    assert _identity_holds(registry)


def _unit_seconds_count(registry, backend="process"):
    """Total observations in the repro_fleet_unit_seconds histogram."""
    for family in registry.snapshot()["metrics"]:
        if family["name"] != "repro_fleet_unit_seconds":
            continue
        return sum(s["count"] for s in family["samples"]
                   if s["labels"].get("backend") == backend)
    return 0


def test_unit_seconds_histogram_reconciles_with_identity():
    """Every unit that ran to an outcome (completed or errored) is one
    histogram observation: count == completed + failed-by-error."""
    from repro.fleet import run_units_resilient
    from repro.telemetry.metrics import MetricsRegistry

    registry = MetricsRegistry()
    good = SweepUnit("water", "ipsc860", "locality", 1, "tiny")
    bad = SweepUnit("no-such-app", "ipsc860", "locality", 2, "tiny")
    outcome = run_units_resilient([good, bad], jobs=1, partial=True,
                                  registry=registry)
    assert outcome.completed == 1
    completed = registry.counter(
        "repro_fleet_units_completed_total", "").value()
    failed = registry.counter("repro_fleet_units_failed_total", "").value()
    assert _unit_seconds_count(registry) == completed + failed == 2
    assert _identity_holds(registry)


@pytest.mark.skipif(not _HAS_FORK, reason="worker-control tests rely on fork")
def test_unit_seconds_histogram_skips_timed_out_units(monkeypatch):
    """A timed-out unit has no execution window, so it is not observed;
    the histogram still reconciles with the completed/failed counters."""
    from repro.fleet import executor
    from repro.telemetry.metrics import MetricsRegistry

    monkeypatch.setattr(executor, "_run_unit", _hang_or_fake)
    registry = MetricsRegistry()
    units = _fake_units(["ok", "hang", "ok"])
    executor.run_units_resilient(units, jobs=2, timeout=2.0, retries=0,
                                 partial=True, registry=registry)
    completed = registry.counter(
        "repro_fleet_units_completed_total", "").value()
    failed = registry.counter("repro_fleet_units_failed_total", "").value()
    assert _unit_seconds_count(registry) == completed + failed
    assert registry.counter(
        "repro_fleet_units_timed_out_total", "").value() >= 1


def test_jobs_one_timeout_warns_instead_of_silently_ignoring(caplog):
    """Regression: ``jobs=1, timeout=...`` dropped the budget without a
    trace; unattended sweeps deserve a WARNING."""
    import logging

    from repro.fleet import run_units_resilient

    units = _fake_units(["water"])
    units = [SweepUnit("water", "ipsc860", "locality", 1, "tiny")]
    with caplog.at_level(logging.WARNING, logger="repro.fleet"):
        outcome = run_units_resilient(units, jobs=1, timeout=5.0)
    assert outcome.ok
    warned = [r for r in caplog.records
              if r.getMessage() == "timeout_unenforced"]
    assert len(warned) == 1
    assert warned[0].fields["timeout_s"] == 5.0

    caplog.clear()
    with caplog.at_level(logging.WARNING, logger="repro.fleet"):
        run_units_resilient(units, jobs=1, timeout=None)
    assert not [r for r in caplog.records
                if r.getMessage() == "timeout_unenforced"]


# --------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------- #
def test_cli_sweep_parallel_snapshot_byte_identical(tmp_path, capsys):
    parallel_path = tmp_path / "parallel.json"
    serial_path = tmp_path / "serial.json"
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "2", "--jobs", "2",
                 "--json", str(parallel_path)]) == 0
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "2", "--jobs", "1",
                 "--json", str(serial_path)]) == 0
    capsys.readouterr()
    assert parallel_path.read_bytes() == serial_path.read_bytes()


def test_cli_sweep_rejects_bad_jobs(capsys):
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_cli_sweep_rejects_bad_timeout_and_retries(capsys):
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--timeout", "-1"]) == 2
    assert "--timeout" in capsys.readouterr().err
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--retries", "-1"]) == 2
    assert "--retries" in capsys.readouterr().err


def test_cli_sweep_partial_reports_failures_and_exits_one(capsys, monkeypatch):
    # Force a deterministic in-unit failure by hiding an application from
    # the worker; partial mode must keep the other rows and exit 1.
    from repro.fleet import executor

    real = executor._run_unit

    def fail_no_locality(indexed):
        index, unit = indexed
        if unit.level == "no_locality":
            from repro.fleet.executor import _WorkerResult
            return _WorkerResult(index, error="Boom: synthetic failure",
                                 trace="")
        return real(indexed)

    monkeypatch.setattr(executor, "_run_unit", fail_no_locality)
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--jobs", "1", "--partial"]) == 1
    captured = capsys.readouterr()
    assert "sweep degraded" in captured.out
    assert "synthetic failure" in captured.err
