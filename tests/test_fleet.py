"""Tests for ``repro.fleet``: parallel sweeps, determinism, crash surfacing.

All parallel tests use ``jobs=2`` at tiny scale so they stay cheap even on
a single-CPU host (the pool still exercises the real fan-out/merge path;
only the wall-clock benefit needs multiple cores).
"""

import json
import multiprocessing

import pytest

from repro.apps import MachineKind
from repro.errors import ExperimentError
from repro.fleet import (
    SweepUnit,
    default_jobs,
    parallel_locality_sweep,
    run_units,
    sweep_snapshot_doc,
    sweep_units,
    verify_parallel_matches_serial,
)
from repro.lab.experiments import locality_sweep
from repro.obs.snapshot import dump_json
from repro.__main__ import main

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def test_default_jobs_positive():
    assert default_jobs() >= 1


def test_sweep_units_match_serial_execution_order():
    units = sweep_units("cholesky", MachineKind.IPSC860, [1, 2], "tiny")
    serial_rows = locality_sweep("cholesky", MachineKind.IPSC860, [1, 2],
                                 "tiny")
    assert [(u.level, u.procs) for u in units] == \
        [(r.level, r.procs) for r in serial_rows]
    assert all(u.machine == "ipsc860" and u.scale == "tiny" for u in units)


def test_parallel_rows_match_serial_rows():
    serial = locality_sweep("water", MachineKind.IPSC860, [1, 2], "tiny")
    parallel = parallel_locality_sweep("water", MachineKind.IPSC860, [1, 2],
                                       "tiny", jobs=2)
    assert len(parallel) == len(serial)
    for serial_row, parallel_row in zip(serial, parallel):
        assert (serial_row.level, serial_row.procs) == \
            (parallel_row.level, parallel_row.procs)
        assert parallel_row.metrics.to_json() == serial_row.metrics.to_json()


def test_jobs_one_runs_without_a_pool_and_matches_serial():
    serial = locality_sweep("string", MachineKind.IPSC860, [2], "tiny")
    in_process = parallel_locality_sweep("string", MachineKind.IPSC860, [2],
                                         "tiny", jobs=1)
    assert [r.metrics.to_json() for r in in_process] == \
        [r.metrics.to_json() for r in serial]


def test_verify_helper_passes_on_dash_sweep():
    text = verify_parallel_matches_serial("ocean", MachineKind.DASH, [1, 2],
                                          "tiny", jobs=2)
    doc = json.loads(text)
    assert doc["schema"] == "repro.sweep/1"
    assert doc["app"] == "ocean"
    assert all("events_fired" in row["metrics"] for row in doc["rows"])


def test_snapshot_doc_is_shared_between_paths():
    rows = locality_sweep("water", MachineKind.IPSC860, [1], "tiny")
    doc = sweep_snapshot_doc("water", "ipsc860", "tiny", rows)
    assert doc["schema"] == "repro.sweep/1"
    assert [r["procs"] for r in doc["rows"]] == [1, 1]
    dump_json(doc)  # strict JSON: every value must be finite


def test_worker_exception_surfaces_as_clean_error():
    bad = SweepUnit("no-such-app", "ipsc860", "locality", 2, "tiny")
    with pytest.raises(ExperimentError) as err:
        run_units([bad, bad], jobs=2)
    message = str(err.value)
    assert "no-such-app" in message
    assert "sweep worker failed" in message


def test_worker_exception_surfaces_in_serial_path_too():
    bad = SweepUnit("water", "ipsc860", "locality", 2, "no-such-scale")
    with pytest.raises(ExperimentError, match="no-such-scale"):
        run_units([bad], jobs=1)


def test_rejects_nonpositive_jobs():
    units = sweep_units("water", MachineKind.IPSC860, [1], "tiny")
    with pytest.raises(ExperimentError, match="jobs"):
        run_units(units, jobs=0)


@pytest.mark.skipif(not _HAS_FORK, reason="hard-crash test relies on fork")
def test_hard_worker_crash_surfaces_as_clean_error(monkeypatch):
    from repro.fleet import executor

    monkeypatch.setattr(executor, "_run_unit", _die_hard)
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    with pytest.raises(ExperimentError, match="pool died"):
        executor.run_units(units, jobs=2)


def _die_hard(_indexed):
    import os

    os._exit(13)  # simulate a segfault/OOM kill: no Python-level exception


# --------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------- #
def test_cli_sweep_parallel_snapshot_byte_identical(tmp_path, capsys):
    parallel_path = tmp_path / "parallel.json"
    serial_path = tmp_path / "serial.json"
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "2", "--jobs", "2",
                 "--json", str(parallel_path)]) == 0
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "2", "--jobs", "1",
                 "--json", str(serial_path)]) == 0
    capsys.readouterr()
    assert parallel_path.read_bytes() == serial_path.read_bytes()


def test_cli_sweep_rejects_bad_jobs(capsys):
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err
