"""Tests for the Ocean application."""

import numpy as np
import pytest

from repro.apps import MachineKind, Ocean, OceanConfig
from repro.apps.ocean import decompose
from repro.core import run_stripped
from repro.runtime import RuntimeOptions, run_message_passing, run_shared_memory
from repro.runtime.options import LocalityLevel

from tests.helpers import assert_matches_stripped


def test_decomposition_covers_grid_exactly():
    for cols, blocks in [(32, 3), (32, 1), (64, 7), (192, 31)]:
        d = decompose(cols, blocks)
        spans = []
        for b in range(blocks):
            spans.append(d.interior_cols[b])
            if b < blocks - 1:
                spans.append(d.boundary_cols[b])
        # Contiguous, non-overlapping, leaving one fixed column per edge.
        assert spans[0][0] == 1
        assert spans[-1][1] == cols - 1
        for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
            assert a_hi == b_lo
        for lo, hi in d.boundary_cols:
            assert hi - lo == 2


def test_decomposition_rejects_too_narrow_grids():
    with pytest.raises(ValueError):
        decompose(10, 8)
    with pytest.raises(ValueError):
        decompose(16, 0)


def test_program_structure():
    app = Ocean(OceanConfig.tiny())
    prog = app.build(5)  # 4 interior blocks
    cfg = app.config
    assert len(prog.parallel_tasks) == cfg.iterations * 4
    for task in prog.parallel_tasks:
        assert task.locality_object.name.startswith("interior")


def test_one_processor_single_block():
    app = Ocean(OceanConfig.tiny())
    prog = app.build(1)
    assert len(prog.parallel_tasks) == app.config.iterations
    metrics = run_message_passing(prog, 1, RuntimeOptions(adaptive_broadcast=False))
    assert_matches_stripped(prog, metrics)


def test_stripped_time_matches_calibration():
    app = Ocean(OceanConfig.paper())
    prog = app.build(32, machine=MachineKind.IPSC860)
    # Cost covers interior plus border columns; allow a small margin over
    # the calibrated stripped total.
    assert prog.total_cost() == pytest.approx(60.99, rel=0.35)


def test_stencil_smooths_the_grid():
    app = Ocean(OceanConfig(iterations=30))
    prog = app.build(3)
    result = run_stripped(prog)
    final_blocks = [
        result.payload(prog.registry.by_name(f"interior{b}")) for b in range(2)
    ]
    # After 30 relaxations, interior variance is far below the random
    # initial variance (uniform[0,1) variance = 1/12).
    var = float(np.var(np.concatenate([b.ravel() for b in final_blocks])))
    assert var < 1.0 / 12.0 / 2.0


@pytest.mark.parametrize("nprocs", [1, 2, 4, 6])
def test_runs_on_both_machines(nprocs):
    app = Ocean(OceanConfig.tiny())
    prog_mp = app.build(nprocs, machine=MachineKind.IPSC860)
    assert_matches_stripped(prog_mp, run_message_passing(prog_mp, nprocs))
    prog_sm = app.build(nprocs, machine=MachineKind.DASH)
    assert_matches_stripped(prog_sm, run_shared_memory(prog_sm, nprocs))


def test_task_placement_omits_main_processor():
    app = Ocean(OceanConfig.tiny())
    prog = app.build(4, level=LocalityLevel.TASK_PLACEMENT)
    metrics = run_message_passing(
        prog, 4, RuntimeOptions(locality=LocalityLevel.TASK_PLACEMENT)
    )
    assert_matches_stripped(prog, metrics)
    assert metrics.tasks_per_processor[0] == 0
    assert metrics.task_locality_pct == pytest.approx(100.0)


def test_adjacent_tasks_conflict_via_boundary_blocks():
    """Adjacent interior-block tasks share a boundary block and must
    serialize; non-adjacent tasks may overlap."""
    app = Ocean(OceanConfig.tiny())
    prog = app.build(4)
    tasks = prog.parallel_tasks[:3]  # blocks 0, 1, 2 of iteration 0
    assert tasks[0].spec.conflicts_with(tasks[1].spec)
    assert tasks[1].spec.conflicts_with(tasks[2].spec)
    assert not tasks[0].spec.conflicts_with(tasks[2].spec)
