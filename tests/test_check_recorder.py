"""Tests for the dynamic access-specification checker (repro.check)."""

import numpy as np
import pytest

from repro.check import AccessRecorder, check_application, run_checked
from repro.core import JadeBuilder, run_stripped
from repro.errors import AccessViolationError

from tests.helpers import reduction_program

APPS = ("water", "string", "ocean", "cholesky")


# --------------------------------------------------------------------- #
# recorder basics (stripped execution, no machine model)
# --------------------------------------------------------------------- #
def _undeclared_read_program():
    jade = JadeBuilder()
    a = jade.object("a", initial=np.ones(4))
    b = jade.object("b", initial=np.zeros(4))

    def body(ctx):
        ctx.wr(b)[:] = ctx.rd(a) * 2  # rd(a) is undeclared

    jade.task("bad", body=body, wr=[b], cost=1e-3)
    return jade.finish("bad-program"), a, b


def test_collect_policy_records_structured_violation():
    program, a, b = _undeclared_read_program()
    recorder = AccessRecorder(program, policy="collect")
    run_stripped(program, recorder=recorder)
    assert len(recorder.violations) == 1
    v = recorder.violations[0]
    assert v.task_name == "bad"
    assert v.object_name == "a"
    assert v.kind == "rd"
    assert v.declared is None
    assert "undeclared rd" in v.format()


def test_collect_policy_lets_execution_continue():
    program, a, b = _undeclared_read_program()
    recorder = AccessRecorder(program, policy="collect")
    result = run_stripped(program, recorder=recorder)
    # The undeclared read still observed the store payload, so the write
    # completed with the right values.
    assert np.array_equal(result.payload(b), np.full(4, 2.0))


def test_raise_policy_aborts_like_jade():
    program, _a, _b = _undeclared_read_program()
    recorder = AccessRecorder(program, policy="raise")
    with pytest.raises(AccessViolationError):
        run_stripped(program, recorder=recorder)


def test_unknown_policy_rejected():
    program, _a, _b = _undeclared_read_program()
    with pytest.raises(ValueError):
        AccessRecorder(program, policy="warn")


def test_declared_accesses_recorded_without_violations():
    program = reduction_program(num_workers=4, iterations=1)
    recorder = AccessRecorder(program)
    run_stripped(program, recorder=recorder)
    assert recorder.violations == []
    assert recorder.tasks_checked == len(program.tasks)
    # Each worker reads state and writes its contribution.
    kinds = {(e.task_name, e.object_name, e.kind) for e in recorder.events}
    assert ("work.0.0", "state", "rd") in kinds
    assert ("work.0.0", "contrib0", "wr") in kinds


def test_store_level_bypass_is_caught():
    jade = JadeBuilder()
    a = jade.object("a", initial=np.ones(4))
    b = jade.object("b", initial=np.zeros(4))

    def sneaky(ctx):
        # Bypass the TaskContext API entirely: raw store read.
        ctx.wr(b)[:] = ctx.store.get(a.object_id)

    jade.task("sneaky", body=sneaky, wr=[b], cost=1e-3)
    program = jade.finish("sneaky-program")
    recorder = AccessRecorder(program)
    run_stripped(program, recorder=recorder)
    assert len(recorder.violations) == 1
    v = recorder.violations[0]
    assert (v.task_name, v.object_name, v.kind) == ("sneaky", "a", "rd")
    assert "bypassing" in v.detail
    channels = {e.channel for e in recorder.events}
    assert "store" in channels


def test_undeclared_set_is_a_write_violation():
    jade = JadeBuilder()
    a = jade.object("a", initial=np.zeros(2))
    jade.task("setter", body=lambda ctx: ctx.set(a, np.ones(2)), cost=1e-3)
    program = jade.finish("setter-program")
    recorder = AccessRecorder(program)
    run_stripped(program, recorder=recorder)
    assert [v.kind for v in recorder.violations] == ["set"]


def test_partial_declaration_reports_declared_mode():
    jade = JadeBuilder()
    a = jade.object("a", initial=np.zeros(2))

    def body(ctx):
        ctx.wr(a)[:] = 1.0  # only rd(a) was declared

    jade.task("writer", body=body, rd=[a], cost=1e-3)
    program = jade.finish("partial")
    recorder = AccessRecorder(program)
    run_stripped(program, recorder=recorder)
    assert [v.declared for v in recorder.violations] == ["rd"]


# --------------------------------------------------------------------- #
# checked runtime executions
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("machine", ["dash", "ipsc860"])
@pytest.mark.parametrize("app", APPS)
def test_paper_apps_are_clean_on_both_machines(app, machine):
    report = check_application(app, machine, num_processors=4, scale="tiny")
    assert report.violations == []
    assert report.races == []
    assert report.access_events > 0
    assert report.tasks_checked > 0
    assert report.ok
    assert "OK" in report.format()


@pytest.mark.parametrize("machine", ["dash", "ipsc860"])
def test_misdeclared_app_is_flagged(machine):
    report = check_application("misdeclared", machine, num_processors=4)
    assert not report.ok
    assert len(report.violations) == 1
    v = report.violations[0]
    # The structured record names the task, the object and the kind.
    assert v.task_name == "smooth.1"
    assert v.object_name == "cell0"
    assert v.kind == "rd"
    # The undeclared access is also an unordered conflicting pair.
    assert any(r.object_name == "cell0" for r in report.races)
    text = report.format()
    assert "ACCESS VIOLATION" in text and "RACE" in text


def test_run_checked_stripped_machine():
    program, _a, _b = _undeclared_read_program()
    report = run_checked(program, machine="stripped")
    assert len(report.violations) == 1
    assert report.races == []  # serial execution is fully ordered
    assert report.metrics is None


def test_run_checked_rejects_unknown_machine():
    program = reduction_program(num_workers=2, iterations=1)
    with pytest.raises(ValueError):
        run_checked(program, machine="quantum")
