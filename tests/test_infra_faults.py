"""Tests for the infrastructure fault layer: spec validation, seeded
decision streams (including the zero-RNG contract for zero-rate fault
types), the chaos proxy's transparency under ``--plan none``, and the
circuit breaker / backoff primitives the fleet's self-healing uses.
"""

import json
import urllib.request

import pytest

from repro.errors import ExperimentError
from repro.faults import (
    InfraFaultPlan,
    InfraFaultSpec,
    NAMED_INFRA_PLANS,
    RequestStall,
    named_infra_spec,
)
from repro.fleet.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BackoffSchedule,
    CircuitBreaker,
    retry_after_s,
)


# --------------------------------------------------------------------- #
# InfraFaultSpec validation and presets
# --------------------------------------------------------------------- #
def test_spec_rejects_out_of_range_rates():
    with pytest.raises(ExperimentError, match="refuse_rate"):
        InfraFaultSpec(refuse_rate=1.5)
    with pytest.raises(ExperimentError, match="corrupt_rate"):
        InfraFaultSpec(corrupt_rate=-0.1)
    with pytest.raises(ExperimentError, match="delay_ms"):
        InfraFaultSpec(delay_ms=-1.0)
    with pytest.raises(ExperimentError, match="stall"):
        InfraFaultSpec(stalls=(RequestStall(5, 5, 0.1),))
    with pytest.raises(ExperimentError, match="stall"):
        InfraFaultSpec(stalls=(RequestStall(-1, 2, 0.1),))


def test_named_plans_are_valid_and_reseedable():
    assert set(NAMED_INFRA_PLANS) == {"none", "flaky", "lossy", "nasty"}
    assert not NAMED_INFRA_PLANS["none"].any_faults
    assert NAMED_INFRA_PLANS["nasty"].stalls
    spec = named_infra_spec("flaky", seed=42)
    assert spec.seed == 42
    assert spec.refuse_rate == NAMED_INFRA_PLANS["flaky"].refuse_rate
    with pytest.raises(ExperimentError, match="unknown infra fault plan"):
        named_infra_spec("cursed")


def test_spec_describe_and_json_round_trip():
    spec = named_infra_spec("nasty", seed=7)
    text = spec.describe()
    assert "seed=7" in text and "refuse=" in text and "stalls=1" in text
    doc = spec.to_json()
    rebuilt = InfraFaultSpec(
        seed=doc["seed"], refuse_rate=doc["refuse_rate"],
        error_rate=doc["error_rate"], delay_rate=doc["delay_rate"],
        delay_ms=doc["delay_ms"], truncate_rate=doc["truncate_rate"],
        corrupt_rate=doc["corrupt_rate"],
        stalls=tuple(RequestStall(s["start"], s["end"], s["hold_s"])
                     for s in doc["stalls"]))
    assert rebuilt == spec


# --------------------------------------------------------------------- #
# InfraFaultPlan decision streams
# --------------------------------------------------------------------- #
def test_decision_stream_is_deterministic():
    spec = named_infra_spec("nasty", seed=3)
    plan_a, plan_b = InfraFaultPlan(spec), InfraFaultPlan(spec)
    seq_a = [plan_a.decide() for _ in range(64)]
    seq_b = [plan_b.decide() for _ in range(64)]
    assert seq_a == seq_b
    assert plan_a.summary() == plan_b.summary()
    assert plan_a.summary()["requests_seen"] == 64


def test_zero_rate_plan_draws_no_rng():
    """The transparency contract: an all-zero spec consumes no RNG at
    all, so ``--plan none`` cannot perturb anything downstream."""
    plan = InfraFaultPlan(InfraFaultSpec(seed=11))
    streams = (plan._refuse_rng, plan._error_rng, plan._delay_rng,
               plan._truncate_rng, plan._corrupt_rng,
               plan._corrupt_byte_rng)
    before = [s.bit_generator.state for s in streams]
    decisions = [plan.decide() for _ in range(50)]
    assert all(d.clean for d in decisions)
    assert [s.bit_generator.state for s in streams] == before
    assert plan.summary()["requests_seen"] == 50
    assert sum(v for k, v in plan.summary().items()
               if k != "requests_seen") == 0


def test_fault_streams_are_independent():
    """Enabling one fault type never shifts another's decision stream."""
    plan_alone = InfraFaultPlan(InfraFaultSpec(seed=5, refuse_rate=0.5))
    plan_mixed = InfraFaultPlan(InfraFaultSpec(seed=5, refuse_rate=0.5,
                                               corrupt_rate=0.9))
    seq_alone = [plan_alone.decide().refuse for _ in range(64)]
    seq_mixed = [plan_mixed.decide().refuse for _ in range(64)]
    assert seq_alone == seq_mixed
    assert any(seq_alone)  # the stream actually fires at rate 0.5


def test_refuse_preempts_and_truncate_excludes_corrupt():
    refuse = InfraFaultPlan(InfraFaultSpec(refuse_rate=1.0, error_rate=1.0,
                                           truncate_rate=1.0)).decide()
    assert refuse.refuse and refuse.error is None and not refuse.truncate
    both = InfraFaultPlan(InfraFaultSpec(truncate_rate=1.0,
                                         corrupt_rate=1.0)).decide()
    assert both.truncate and not both.corrupt


def test_stall_windows_cover_exact_ordinals():
    plan = InfraFaultPlan(InfraFaultSpec(
        stalls=(RequestStall(1, 3, 0.05),)))
    holds = [plan.decide().stall_s for _ in range(5)]
    assert holds == [0.0, 0.05, 0.05, 0.0, 0.0]
    assert plan.summary()["requests_stalled"] == 2


def test_corrupt_body_flips_exactly_one_byte_deterministically():
    spec = InfraFaultSpec(seed=9, corrupt_rate=1.0)
    body = b"0123456789" * 4
    mutated_a = InfraFaultPlan(spec).corrupt_body(body)
    mutated_b = InfraFaultPlan(spec).corrupt_body(body)
    assert mutated_a == mutated_b != body
    assert len(mutated_a) == len(body)
    assert sum(1 for x, y in zip(mutated_a, body) if x != y) == 1
    assert InfraFaultPlan(spec).corrupt_body(b"") == b""


# --------------------------------------------------------------------- #
# chaos proxy transparency (plan none) and counters endpoint
# --------------------------------------------------------------------- #
def test_proxy_plan_none_is_transparent_and_counts():
    from repro.faults.proxy import ChaosProxy
    from repro.fleet import SweepUnit
    from repro.fleet.worker import WorkerClient, WorkerServer

    worker = WorkerServer(port=0)
    worker.start_background()
    proxy = ChaosProxy(worker.url, InfraFaultSpec())
    proxy.start_background()
    try:
        direct = WorkerClient(worker.url)
        proxied = WorkerClient(proxy.url)
        # Health forwards untouched (and is never faultable).
        assert proxied.health()["kind"] == direct.health()["kind"] \
            == "worker"
        unit = SweepUnit("water", "ipsc860", "locality", 1, "tiny")
        doc = proxied.run_unit("sweep-proxy", 1, 0, unit)
        # The host-side integrity fields survive the relay byte-exact:
        # the checksum the worker stamped still verifies.
        from repro.fleet.worker import response_checksum

        assert doc["checksum"] == response_checksum(doc)
        assert doc["metrics"]["elapsed"] > 0
        with urllib.request.urlopen(proxy.url + "/chaos/v1/counters",
                                    timeout=10) as resp:
            counters = json.loads(resp.read())
        assert counters["counters"]["requests_seen"] == 1
        assert counters["counters"]["responses_corrupted"] == 0
        assert counters["spec"] == InfraFaultSpec().to_json()
    finally:
        proxy.stop()
        worker.stop()


def test_proxy_injects_503_with_taxonomy_body():
    from repro.faults.proxy import ChaosProxy
    from repro.fleet import SweepUnit
    from repro.fleet.worker import WorkerClient, WorkerError, WorkerServer

    worker = WorkerServer(port=0)
    worker.start_background()
    proxy = ChaosProxy(worker.url, InfraFaultSpec(error_rate=1.0))
    proxy.start_background()
    try:
        client = WorkerClient(proxy.url)
        unit = SweepUnit("water", "ipsc860", "locality", 1, "tiny")
        with pytest.raises(WorkerError) as info:
            client.run_unit("sweep-503", 1, 0, unit)
        assert info.value.status == 503
        # An injected 503 is distinguishable from a draining worker's:
        # no Retry-After, no "draining" marker.
        assert info.value.retry_after is None
        assert "draining" not in str(info.value)
    finally:
        proxy.stop()
        worker.stop()


# --------------------------------------------------------------------- #
# backoff + circuit breaker
# --------------------------------------------------------------------- #
def test_backoff_schedule_is_seeded_and_validated():
    a = BackoffSchedule(seed=1, label="w", base_s=0.1, max_s=5.0)
    b = BackoffSchedule(seed=1, label="w", base_s=0.1, max_s=5.0)
    assert [a.delay(i) for i in range(6)] == [b.delay(i) for i in range(6)]
    flat = BackoffSchedule(base_s=1.0, max_s=4.0, jitter=0.0)
    assert [flat.delay(i) for i in range(4)] == [1.0, 2.0, 4.0, 4.0]
    with pytest.raises(ExperimentError, match="base_s"):
        BackoffSchedule(base_s=0.0)
    with pytest.raises(ExperimentError, match="factor"):
        BackoffSchedule(factor=0.5)
    with pytest.raises(ExperimentError, match="jitter"):
        BackoffSchedule(jitter=2.0)
    assert retry_after_s(flat, 0) == 1
    assert retry_after_s(flat, 2) == 4
    assert retry_after_s(BackoffSchedule(base_s=0.01, max_s=0.02,
                                         jitter=0.0), 0) == 1  # floor


def test_breaker_open_half_open_closed_cycle():
    """The scripted acceptance transition: strikes open the breaker,
    the backoff expires into half-open, one probe is admitted, and a
    good probe closes it again."""
    transitions = []
    breaker = CircuitBreaker(
        BackoffSchedule(base_s=10.0, max_s=10.0, jitter=0.0),
        failure_threshold=3, max_opens=4,
        on_transition=transitions.append)
    now = 100.0
    assert breaker.state == CLOSED and breaker.allow_dispatch(now)
    breaker.record_failure(now)
    breaker.record_failure(now)
    assert breaker.state == CLOSED  # under the threshold
    breaker.record_failure(now)
    assert breaker.state == OPEN and breaker.opens == 1
    assert not breaker.allow_dispatch(now)
    assert not breaker.allow_probe(now)          # interval not expired
    assert breaker.wait_s(now) == pytest.approx(10.0)
    # Backoff expired: half-open admits exactly one probe.
    later = now + 10.0
    assert breaker.allow_probe(later)
    assert breaker.state == HALF_OPEN
    assert not breaker.allow_probe(later)        # second probe refused
    assert not breaker.allow_dispatch(later)     # still not dispatching
    breaker.record_success(later)
    assert breaker.state == CLOSED and breaker.opens == 0
    assert breaker.allow_dispatch(later)
    assert transitions == [OPEN, HALF_OPEN, CLOSED]


def test_breaker_failed_probe_deepens_backoff_until_exhausted():
    breaker = CircuitBreaker(
        BackoffSchedule(base_s=1.0, max_s=8.0, jitter=0.0),
        failure_threshold=1, max_opens=3)
    now = 0.0
    waits = []
    for _ in range(3):
        breaker.record_failure(now)
        assert breaker.state == OPEN
        waits.append(breaker.wait_s(now))
        now += waits[-1]
        assert breaker.allow_probe(now)
        # probe fails: a half-open failure re-opens immediately.
    assert waits == [1.0, 2.0, 4.0]  # exponential per open cycle
    assert breaker.exhausted
    assert not breaker.allow_dispatch(now)


def test_breaker_validates_construction():
    backoff = BackoffSchedule(jitter=0.0)
    with pytest.raises(ExperimentError, match="failure_threshold"):
        CircuitBreaker(backoff, failure_threshold=0)
    with pytest.raises(ExperimentError, match="max_opens"):
        CircuitBreaker(backoff, max_opens=0)
