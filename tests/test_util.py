"""Unit tests for the util package (ids, units, rng)."""

import numpy as np
import pytest

from repro.util import (
    KB,
    MB,
    MSEC,
    USEC,
    CYCLES,
    IdAllocator,
    bytes_human,
    seconds_human,
    substream,
)


def test_id_allocator_namespaces_are_independent():
    ids = IdAllocator()
    assert [ids.next("task") for _ in range(3)] == [0, 1, 2]
    assert ids.next("object") == 0
    assert ids.count("task") == 3
    assert ids.peek("task") == 3
    assert ids.count("never") == 0


def test_id_allocator_reset():
    ids = IdAllocator()
    ids.next("a")
    ids.next("b")
    ids.reset("a")
    assert ids.next("a") == 0
    assert ids.next("b") == 1
    ids.reset()
    assert ids.next("b") == 0


def test_unit_constants():
    assert KB == 1024
    assert MB == 1024 * 1024
    assert USEC == pytest.approx(1e-6)
    assert MSEC == pytest.approx(1e-3)
    assert CYCLES(33, 33e6) == pytest.approx(1e-6)


def test_bytes_human():
    assert bytes_human(512) == "512 B"
    assert bytes_human(2048) == "2.0 KB"
    assert bytes_human(3 * MB) == "3.0 MB"


def test_seconds_human():
    assert seconds_human(2.5) == "2.50 s"
    assert seconds_human(0.0025) == "2.50 ms"
    assert seconds_human(47e-6) == "47.0 us"


def test_substream_reproducible_and_label_sensitive():
    a1 = substream(7, "x").random(5)
    a2 = substream(7, "x").random(5)
    b = substream(7, "y").random(5)
    c = substream(8, "x").random(5)
    assert np.array_equal(a1, a2)
    assert not np.array_equal(a1, b)
    assert not np.array_equal(a1, c)
