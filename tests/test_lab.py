"""Tests for the experiment harness (tiny scale, fast)."""

import pytest

from repro.apps import MachineKind
from repro.lab import (
    PAPER_PROCS,
    PAPER_TABLES,
    broadcast_sweep,
    dash_params,
    fetch_latency_rows,
    ipsc_params,
    levels_for,
    locality_sweep,
    make_application,
    mgmt_percentage_sweep,
    render_series,
    render_table,
    rows_to_series,
    run_app,
    serial_and_stripped,
)
from repro.lab.calibration import (
    DASH_TASK_CREATE_SECONDS,
    IPSC_TASK_CREATE_SECONDS,
)
from repro.runtime.options import LocalityLevel


def test_paper_procs_match_paper():
    assert PAPER_PROCS == [1, 2, 4, 8, 16, 24, 32]


def test_calibrated_params_are_wired():
    assert dash_params().task_create_seconds == DASH_TASK_CREATE_SECONDS
    assert ipsc_params().task_create_seconds == IPSC_TASK_CREATE_SECONDS
    # The iPSC/860's task management is the coarse one (§5.2.2).
    assert IPSC_TASK_CREATE_SECONDS > DASH_TASK_CREATE_SECONDS


def test_paper_tables_transcription_sanity():
    # Table 1 and 6 carry serial+stripped per application.
    for table in (1, 6):
        assert set(PAPER_TABLES[table]) == {"water", "string", "ocean", "cholesky"}
    # Execution-time tables cover the full processor range.
    assert PAPER_TABLES[2]["Locality"][32] == 119.48
    assert PAPER_TABLES[10]["No Locality"][2] == 107.43
    # The paper's missing String 16-proc No Locality cell stays missing.
    assert 16 not in PAPER_TABLES[8]["No Locality"]


def test_levels_for_respects_placement_support():
    assert levels_for("water") == [LocalityLevel.LOCALITY, LocalityLevel.NO_LOCALITY]
    assert levels_for("ocean")[0] is LocalityLevel.TASK_PLACEMENT


def test_make_application_caches():
    a = make_application("water", "tiny")
    b = make_application("water", "tiny")
    assert a is b


def test_run_app_tiny_smoke():
    m = run_app("water", 2, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                scale="tiny")
    assert m.tasks_executed > 0
    assert m.elapsed > 0


def test_serial_and_stripped_rows():
    row = serial_and_stripped("water", MachineKind.DASH, scale="tiny")
    assert row["serial"] > row["stripped"] > 0


def test_locality_sweep_rows_cover_grid():
    rows = locality_sweep("water", MachineKind.IPSC860, [1, 2], scale="tiny")
    assert len(rows) == 2 * 2  # two levels x two proc counts
    series = rows_to_series(rows, lambda r: r.metrics.elapsed)
    assert set(series) == {"locality", "no_locality"}


def test_broadcast_sweep_labels():
    rows = broadcast_sweep("water", [1, 2], scale="tiny")
    labels = {r.level for r in rows}
    assert labels == {"broadcast", "no-broadcast"}


def test_mgmt_sweep_reports_percentage():
    rows = mgmt_percentage_sweep("ocean", MachineKind.IPSC860, [2], scale="tiny")
    assert 0.0 <= rows[0].extra["mgmt_pct"] <= 100.0
    assert rows[0].extra["workfree_elapsed"] <= rows[0].metrics.elapsed


def test_fetch_latency_rows():
    rows = fetch_latency_rows(["water", "ocean"], 4, scale="tiny")
    for row in rows:
        assert row.extra["latency_ratio"] >= 0.99


def test_render_table_alignment_and_paper_rows():
    text = render_table(
        "Demo", [1, 2], {"Locality": {1: 10.0, 2: 5.0}},
        paper={"Locality": {1: 11.0, 2: 6.0}},
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert any("(paper) Locality" in ln for ln in lines)
    assert "10.00" in text and "11.00" in text


def test_render_table_missing_cells_dash():
    text = render_table("T", [1, 16], {"row": {1: 1.0}})
    assert "-" in text.splitlines()[-1]


def test_render_series():
    text = render_series("Fig", [1, 2], {"a": {1: 1.0, 2: 2.0}}, unit="s")
    assert "Fig" in text and "[s]" in text
    assert text.splitlines()[-1].startswith("a")
