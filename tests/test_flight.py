"""Tests for the engine flight recorder: zero perturbation (byte
identity), bounded memory via decimation, and repro.obs/4 validation."""

import pytest

from repro.apps import MachineKind
from repro.lab.experiments import profile_app, run_app
from repro.obs.flight import FlightRecorder
from repro.obs.schema import PROFILE_SCHEMA, validate_profile
from repro.obs.snapshot import dump_json
from repro.runtime.options import LocalityLevel


def _run(**kwargs):
    return run_app("water", 4, MachineKind.IPSC860,
                   LocalityLevel.LOCALITY, scale="tiny", **kwargs)


# --------------------------------------------------------------------- #
# zero perturbation
# --------------------------------------------------------------------- #
def test_flight_recorder_does_not_perturb_run():
    # The metrics document of a run with a recorder attached must be
    # byte-identical to a run without one: observation never feeds back.
    plain = _run()
    recorded = _run(flight=FlightRecorder())
    assert dump_json(plain.to_json()) == dump_json(
        recorded.to_json())


def test_flight_recorder_does_not_perturb_profile():
    _, plain = profile_app("water", 4, MachineKind.IPSC860,
                           LocalityLevel.LOCALITY, scale="tiny")
    recorder = FlightRecorder()
    _, recorded = profile_app("water", 4, MachineKind.IPSC860,
                              LocalityLevel.LOCALITY, scale="tiny",
                              flight=recorder)
    plain_doc = plain.to_dict()
    recorded_doc = recorded.to_dict()
    assert recorded_doc["flight"] is not None
    # Everything except the flight section itself is untouched.
    recorded_doc["flight"] = None
    assert dump_json(plain_doc) == dump_json(recorded_doc)


def test_flight_series_is_deterministic():
    a = FlightRecorder()
    b = FlightRecorder()
    _run(flight=a)
    _run(flight=b)
    assert dump_json(a.to_dict()) == dump_json(b.to_dict())


# --------------------------------------------------------------------- #
# sampling and decimation
# --------------------------------------------------------------------- #
def test_flight_samples_cover_run_within_capacity():
    recorder = FlightRecorder(capacity=32)
    metrics = _run(flight=recorder)
    doc = recorder.to_dict()
    assert 0 < len(doc["samples"]) < 32
    times = [s["t"] for s in doc["samples"]]
    assert times == sorted(times)
    assert len(set(times)) == len(times)
    # The series spans the run: first sample at the start, last near the
    # end (within one final sampling interval of it).
    assert times[0] <= doc["interval"]
    assert times[-1] <= metrics.elapsed
    assert doc["decimations"] >= 1  # tiny interval forces decimation
    assert doc["interval"] == pytest.approx(1e-6 * 2 ** doc["decimations"])


def test_flight_samples_carry_engine_and_runtime_state():
    recorder = FlightRecorder()
    _run(flight=recorder)
    sample = recorder.samples[-1]
    assert sample["events_fired"] > 0
    assert sample["queue_depth"] >= 0
    assert isinstance(sample["attribution"], dict)
    assert "locality_hits" in sample["attribution"]


def test_flight_inflight_gauge_needs_a_profiled_run():
    # Plain runs have no ProfileCollector, so the in-flight gauge is
    # None; profiled runs attach the collector and the gauge fills in.
    plain = FlightRecorder()
    _run(flight=plain)
    assert all(s["inflight"] is None for s in plain.samples)
    profiled = FlightRecorder()
    profile_app("water", 4, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                scale="tiny", flight=profiled)
    assert any(s["inflight"] is not None for s in profiled.samples)


def test_flight_recorder_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=1)
    with pytest.raises(ValueError):
        FlightRecorder(interval=0.0)


# --------------------------------------------------------------------- #
# schema
# --------------------------------------------------------------------- #
def test_profile_with_flight_validates_as_obs4():
    recorder = FlightRecorder()
    _, profile = profile_app("water", 4, MachineKind.IPSC860,
                             LocalityLevel.LOCALITY, scale="tiny",
                             flight=recorder)
    doc = profile.to_dict()
    assert doc["schema"] == PROFILE_SCHEMA == "repro.obs/4"
    assert validate_profile(doc) == []


def test_obs4_requires_flight_key():
    _, profile = profile_app("water", 2, MachineKind.IPSC860,
                             LocalityLevel.LOCALITY, scale="tiny")
    doc = profile.to_dict()
    assert doc["flight"] is None
    assert validate_profile(doc) == []
    del doc["flight"]
    assert any("flight" in p for p in validate_profile(doc))


def test_older_profile_schemas_still_validate():
    _, profile = profile_app("water", 2, MachineKind.IPSC860,
                             LocalityLevel.LOCALITY, scale="tiny")
    doc = profile.to_dict()
    del doc["flight"]
    for version in ("repro.obs/1", "repro.obs/2", "repro.obs/3"):
        doc["schema"] = version
        assert validate_profile(doc) == [], version


def test_flight_section_validation_catches_corruption():
    recorder = FlightRecorder()
    _, profile = profile_app("water", 2, MachineKind.IPSC860,
                             LocalityLevel.LOCALITY, scale="tiny",
                             flight=recorder)
    doc = profile.to_dict()
    doc["flight"]["samples"][0]["t"] = -1.0
    assert validate_profile(doc)
