"""Unit tests for FIFO resources."""

import pytest

from repro.sim import FifoResource, Simulator


def test_jobs_serve_in_fifo_order():
    sim = Simulator()
    res = FifoResource(sim, "r")
    spans = []
    res.submit(1.0, lambda s, f: spans.append((s, f)))
    res.submit(0.5, lambda s, f: spans.append((s, f)))
    res.submit(2.0, lambda s, f: spans.append((s, f)))
    sim.run()
    assert spans == [(0.0, 1.0), (1.0, 1.5), (1.5, 3.5)]


def test_submission_while_busy_queues():
    sim = Simulator()
    res = FifoResource(sim, "r")
    spans = []
    res.submit(2.0, lambda s, f: spans.append((s, f)))

    def late_submit():
        res.submit(1.0, lambda s, f: spans.append((s, f)))

    sim.schedule(0.5, late_submit)
    sim.run()
    assert spans == [(0.0, 2.0), (2.0, 3.0)]


def test_idle_gap_then_new_job_starts_at_submit_time():
    sim = Simulator()
    res = FifoResource(sim, "r")
    spans = []
    res.submit(1.0, lambda s, f: spans.append((s, f)))
    sim.schedule(5.0, lambda: res.submit(1.0, lambda s, f: spans.append((s, f))))
    sim.run()
    assert spans == [(0.0, 1.0), (5.0, 6.0)]


def test_utilization_and_counters():
    sim = Simulator()
    res = FifoResource(sim, "r")
    res.submit(1.0, lambda s, f: None)
    res.submit(1.0, lambda s, f: None)
    sim.run()
    assert res.jobs_served == 2
    assert res.busy_time == pytest.approx(2.0)
    assert res.utilization() == pytest.approx(1.0)
    assert res.utilization(horizon=4.0) == pytest.approx(0.5)


def test_zero_service_time_job():
    sim = Simulator()
    res = FifoResource(sim, "r")
    spans = []
    res.submit(0.0, lambda s, f: spans.append((s, f)))
    sim.run()
    assert spans == [(0.0, 0.0)]


def test_negative_service_time_rejected():
    sim = Simulator()
    res = FifoResource(sim, "r")
    with pytest.raises(ValueError):
        res.submit(-1.0, lambda s, f: None)


def test_queue_length_observable():
    sim = Simulator()
    res = FifoResource(sim, "r")
    res.submit(1.0, lambda s, f: None)
    res.submit(1.0, lambda s, f: None)
    res.submit(1.0, lambda s, f: None)
    # One in service, two waiting.
    assert res.queue_length == 2
    sim.run()
    assert res.queue_length == 0
