"""Tests for Panel Cholesky and its sparse-matrix substrate."""

import numpy as np
import pytest

from repro.apps import CholeskyConfig, MachineKind, PanelCholesky, sparse
from repro.core import run_stripped
from repro.runtime import RuntimeOptions, run_message_passing, run_shared_memory
from repro.runtime.options import LocalityLevel

from tests.helpers import assert_matches_stripped


# --------------------------------------------------------------------- #
# sparse substrate
# --------------------------------------------------------------------- #
def test_pattern_has_diagonal_and_is_lower():
    pattern = sparse.synthetic_spd_pattern(50, band=10)
    for j, rows in enumerate(pattern):
        assert rows[0] == j
        assert np.all(rows >= j)
        assert np.all(rows < 50)


def test_spd_matrix_is_positive_definite():
    pattern = sparse.synthetic_spd_pattern(40, band=8)
    A = sparse.build_spd_matrix(pattern)
    assert np.allclose(A, A.T)
    eigenvalues = np.linalg.eigvalsh(A)
    assert np.min(eigenvalues) > 0


def test_panelize():
    panels = sparse.panelize(25, 8)
    assert panels == [(0, 8), (8, 16), (16, 24), (24, 25)]


def test_panel_dag_includes_direct_overlaps():
    pattern = sparse.synthetic_spd_pattern(60, band=15)
    panels = sparse.panelize(60, 10)
    struct = sparse.panel_dag(pattern, panels)
    # Direct panel-block nonzeros must appear in the DAG.
    panel_of = np.zeros(60, dtype=int)
    for idx, (lo, hi) in enumerate(panels):
        panel_of[lo:hi] = idx
    for j, rows in enumerate(pattern):
        pj = panel_of[j]
        for pi in np.unique(panel_of[rows]):
            if pi > pj:
                assert pi in struct[pj]


def test_panel_dag_contains_fill():
    """A hand-built arrow pattern: eliminating panel 0 must couple its
    neighbours even though they share no stored nonzero."""
    n, w = 6, 1
    pattern = [np.array([0, 2, 4])] + [np.array([j]) for j in range(1, n)]
    # Make columns 2 and 4 otherwise uncoupled.
    struct = sparse.panel_dag(pattern, sparse.panelize(n, w))
    assert 4 in struct[2]  # fill edge created by eliminating column 0


def test_panel_dag_matches_numeric_fill():
    """The symbolic panel DAG must cover every numerically nonzero panel
    update of the real factorization."""
    n, w = 48, 6
    pattern = sparse.synthetic_spd_pattern(n, band=10, extras_per_col=1.0)
    panels = sparse.panelize(n, w)
    struct = sparse.panel_dag(pattern, panels)
    A = sparse.build_spd_matrix(pattern)
    L = np.linalg.cholesky(A)
    for k, (lo_k, hi_k) in enumerate(panels):
        for j, (lo_j, hi_j) in enumerate(panels):
            if j <= k:
                continue
            block = L[lo_j:hi_j, lo_k:hi_k]
            if np.any(np.abs(block) > 1e-12):
                assert j in struct[k], f"numeric nonzero panel ({j},{k}) missing"


def test_flop_model_positive_and_consistent():
    pattern = sparse.synthetic_spd_pattern(60, band=12)
    panels = sparse.panelize(60, 10)
    struct = sparse.panel_dag(pattern, panels)
    flops = sparse.panel_flops(panels, struct)
    assert len(flops.internal) == len(panels)
    assert all(f > 0 for f in flops.internal)
    assert set(flops.external) == {
        (k, j) for k in range(len(panels)) for j in struct[k]
    }
    assert flops.total() > 0


# --------------------------------------------------------------------- #
# the application
# --------------------------------------------------------------------- #
def test_task_inventory_matches_paper_description():
    app = PanelCholesky(CholeskyConfig.tiny())
    prog = app.build(4)
    internal = [t for t in prog.parallel_tasks if t.metadata["kind"] == "internal"]
    external = [t for t in prog.parallel_tasks if t.metadata["kind"] == "external"]
    assert len(internal) == len(app.panels)
    assert len(external) == sum(len(s) for s in app.struct)
    for t in external:
        # Locality object is the *updated* panel.
        assert t.locality_object.name == f"panel{t.metadata['dst']}"


def test_stripped_factorization_is_correct():
    app = PanelCholesky(CholeskyConfig.tiny())
    prog = app.build(4)
    result = run_stripped(prog)
    err = app.verify_factorization(result.store)
    assert err < 1e-8


def test_factorization_matches_scipy():
    app = PanelCholesky(CholeskyConfig.tiny())
    prog = app.build(2)
    result = run_stripped(prog)
    L = app.assemble_factor(result.store)
    expected = np.linalg.cholesky(app.matrix)
    assert np.allclose(L, expected, atol=1e-8)


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
def test_parallel_factorization_correct_on_mp(nprocs):
    app = PanelCholesky(CholeskyConfig.tiny())
    prog = app.build(nprocs)
    metrics = run_message_passing(prog, nprocs)
    assert_matches_stripped(prog, metrics)
    app.verify_factorization(metrics.final_store)


@pytest.mark.parametrize("nprocs", [1, 4])
def test_parallel_factorization_correct_on_sm(nprocs):
    app = PanelCholesky(CholeskyConfig.tiny())
    prog = app.build(nprocs, machine=MachineKind.DASH)
    metrics = run_shared_memory(prog, nprocs)
    assert_matches_stripped(prog, metrics)
    app.verify_factorization(metrics.final_store)


def test_task_placement_level():
    app = PanelCholesky(CholeskyConfig.tiny())
    prog = app.build(4, level=LocalityLevel.TASK_PLACEMENT)
    metrics = run_message_passing(
        prog, 4, RuntimeOptions(locality=LocalityLevel.TASK_PLACEMENT)
    )
    assert_matches_stripped(prog, metrics)
    assert metrics.tasks_per_processor[0] == 0
    # §5.2.2: less than 100% — the main processor owns every panel after
    # initialization, so the first task per panel misses its target.
    assert 60.0 < metrics.task_locality_pct < 100.0


def test_paper_scale_structure_builds_quickly():
    app = PanelCholesky(CholeskyConfig.paper())
    assert app.config.n == 3948
    nnz = sparse.pattern_nnz(app.pattern)
    assert 40_000 < nnz < 200_000  # BCSSTK15 stores ~60k
    # Hundreds of panels, a few thousand tasks — the paper's granularity.
    assert 200 <= len(app.panels) <= 300
    assert 1000 <= app.task_count() <= 20_000
    prog = app.build(8, machine=MachineKind.IPSC860)
    assert prog.total_cost() == pytest.approx(28.53, rel=1e-6)


def test_stripped_time_matches_calibration_dash():
    app = PanelCholesky(CholeskyConfig.paper())
    prog = app.build(8, machine=MachineKind.DASH)
    assert prog.total_cost() == pytest.approx(28.91, rel=1e-6)
