"""Smoke tests: every example script runs to completion.

Examples default to paper-scale sweeps; where supported they are invoked
with reduced arguments to keep the suite fast.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "all three executions agree" in out


def test_portability():
    out = run_example("portability.py")
    assert out.count("OK") == 4


def test_cholesky_factorization():
    out = run_example("cholesky_factorization.py", "--n", "60", "--width", "10")
    assert "factorization verified" in out
    assert "True" in out


def test_locality_levels_tiny():
    out = run_example("locality_levels.py", "--scale", "tiny", "--procs", "4")
    assert "task_placement" in out


def test_water_broadcast_tiny():
    out = run_example("water_broadcast.py", "--scale", "tiny",
                      "--procs", "2", "4")
    assert "broadcast" in out.lower()


def test_program_analysis_tiny():
    out = run_example("program_analysis.py", "--scale", "tiny", "--procs", "4")
    assert "cholesky" in out
