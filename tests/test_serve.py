"""The serve subsystem: requests, cache keys, the result cache, submit.

The load-bearing properties:

* cache keys are stable across processes (satellite 3's first half) and
  change whenever *any* request field changes, including nested
  fault-spec fields (the second half);
* ``submit`` returns byte-identical text for cached and fresh paths;
* request parsing is strict — unknown kinds/fields are exit-2 errors,
  never silently dropped fields that would alias cache entries.
"""

import dataclasses
import json
import subprocess
import sys

import pytest

from repro.errors import (
    EXIT_BAD_REQUEST,
    EXIT_SIMULATION_RAISED,
    ExperimentError,
    exit_code_for,
)
from repro.faults import FaultSpec, NodeSlowdown, NodeStall
from repro.obs.schema import SERVE_SCHEMA, validate_snapshot
from repro.serve import (
    ChaosRequest,
    ResultCache,
    RunRequest,
    SweepRequest,
    request_from_json,
    submit,
)
from repro.serve.api import ExecutionPolicy, describe_catalog, result_doc

TINY_RUN = dict(app="water", machine="ipsc860", scale="tiny", procs=2)


# ---------------------------------------------------------------------- #
# request construction and validation
# ---------------------------------------------------------------------- #
def test_run_request_rejects_unknown_app_naming_valid_ones():
    with pytest.raises(ExperimentError, match="valid applications"):
        RunRequest(app="nonesuch")


@pytest.mark.parametrize("kwargs", [
    dict(machine="cray"),
    dict(scale="huge"),
    dict(level="psychic"),
    dict(procs=0),
    dict(procs="four"),
    dict(machine="dash", faults=FaultSpec(drop_rate=0.1)),
])
def test_run_request_rejects_bad_fields(kwargs):
    with pytest.raises(ExperimentError):
        RunRequest(app="water", **kwargs)


def test_sweep_request_requires_procs():
    with pytest.raises(ExperimentError, match="at least one"):
        SweepRequest(app="water")
    with pytest.raises(ExperimentError):
        SweepRequest(app="water", procs=(0,))


def test_chaos_request_machine_is_always_ipsc860():
    req = ChaosRequest(app="water")
    assert req.machine == "ipsc860"
    assert req.to_json()["machine"] == "ipsc860"


def test_requests_are_frozen():
    req = RunRequest(**TINY_RUN)
    with pytest.raises(dataclasses.FrozenInstanceError):
        req.procs = 4


# ---------------------------------------------------------------------- #
# round-trip through JSON (the POST /v1/jobs body format)
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("request_obj", [
    RunRequest(**TINY_RUN),
    RunRequest(app="ocean", machine="dash", scale="tiny", procs=4,
               level="task_placement", replication=False, target_tasks=2),
    RunRequest(app="water", scale="tiny", procs=2,
               faults=FaultSpec(seed=3, drop_rate=0.05)),
    SweepRequest(app="string", machine="dash", scale="tiny", procs=(1, 2)),
    ChaosRequest(app="water", procs=2,
                 faults=FaultSpec(duplicate_rate=0.1,
                                  slowdowns=(NodeSlowdown(
                                      node=1, factor=2.0, start=0.0,
                                      end=1.0),),
                                  stalls=(NodeStall(node=0, start=0.1,
                                                    end=0.2),))),
])
def test_round_trip_preserves_request_and_key(request_obj):
    rebuilt = request_from_json(request_obj.to_json())
    assert rebuilt == request_obj
    assert rebuilt.cache_key() == request_obj.cache_key()
    # The enveloped form ({"kind", "request"}) parses identically.
    enveloped = {"kind": request_obj.kind, "request": request_obj.to_json()}
    assert request_from_json(enveloped) == request_obj


def test_request_from_json_rejects_unknown_kind_and_fields():
    with pytest.raises(ExperimentError, match="unknown request kind"):
        request_from_json({"kind": "teleport", "app": "water"})
    with pytest.raises(ExperimentError, match="unknown run request field"):
        request_from_json({"kind": "run", "app": "water", "spice": 1})
    with pytest.raises(ExperimentError, match="unknown fault spec field"):
        request_from_json({"kind": "run", "app": "water", "scale": "tiny",
                           "faults": {"drop_rat": 0.5}})
    with pytest.raises(ExperimentError, match="ipsc860"):
        request_from_json({"kind": "chaos", "app": "water",
                           "machine": "dash"})


# ---------------------------------------------------------------------- #
# satellite 3: cache-key stability
# ---------------------------------------------------------------------- #
def test_cache_key_stable_across_processes():
    req = RunRequest(app="water", machine="ipsc860", scale="paper", procs=8,
                     faults=FaultSpec(seed=7, drop_rate=0.01))
    code = (
        "from repro.serve import RunRequest\n"
        "from repro.faults import FaultSpec\n"
        "req = RunRequest(app='water', machine='ipsc860', scale='paper',\n"
        "                 procs=8, faults=FaultSpec(seed=7, drop_rate=0.01))\n"
        "print(req.cache_key())\n"
    )
    out = subprocess.run([sys.executable, "-c", code], capture_output=True,
                         text=True, check=True)
    assert out.stdout.strip() == req.cache_key()


def test_cache_key_changes_with_every_run_field():
    base = RunRequest(app="water", machine="ipsc860", scale="tiny", procs=2,
                      level="locality", replication=True,
                      adaptive_broadcast=True, concurrent_fetches=True,
                      target_tasks=1, eager_update=False, work_free=False,
                      seed=0, max_sim_time=None, faults=None)
    perturbations = dict(
        app="string", machine="dash", scale="paper", procs=4,
        level="no_locality", replication=False, adaptive_broadcast=False,
        concurrent_fetches=False, target_tasks=2, eager_update=True,
        work_free=True, seed=1, max_sim_time=100.0,
        faults=FaultSpec(drop_rate=0.01),
    )
    assert set(perturbations) == {f.name for f in dataclasses.fields(base)}
    keys = {base.cache_key(): "base"}
    for name, value in perturbations.items():
        changed = dataclasses.replace(base, **{name: value})
        key = changed.cache_key()
        assert key not in keys, \
            f"changing {name} collided with {keys[key]}"
        keys[key] = name


def test_cache_key_changes_with_nested_fault_spec_fields():
    base_spec = FaultSpec(seed=0, drop_rate=0.0, duplicate_rate=0.0,
                          delay_rate=0.0, delay_us=200.0, degrade_rate=0.0,
                          degrade_multiplier=4.0)
    base = ChaosRequest(app="water", procs=2, faults=base_spec)
    perturbations = dict(
        seed=1, drop_rate=0.01, duplicate_rate=0.01, delay_rate=0.01,
        delay_us=300.0, degrade_rate=0.01, degrade_multiplier=2.0,
        slowdowns=(NodeSlowdown(node=0, factor=2.0, start=0.0, end=1.0),),
        stalls=(NodeStall(node=0, start=0.0, end=0.1),),
    )
    spec_fields = {f.name for f in dataclasses.fields(FaultSpec)}
    assert set(perturbations) <= spec_fields
    assert spec_fields - set(perturbations) == set(), \
        "new FaultSpec field is missing a perturbation case"
    keys = {base.cache_key(): "base"}
    for name, value in perturbations.items():
        spec = dataclasses.replace(base_spec, **{name: value})
        key = dataclasses.replace(base, faults=spec).cache_key()
        assert key not in keys, \
            f"changing faults.{name} collided with {keys[key]}"
        keys[key] = name


def test_cache_key_differs_across_kinds_with_same_fields():
    # The "kind" tag is serialized, so a run and a chaos request over the
    # same app/procs/scale can never alias one cache entry.
    run = RunRequest(app="water", scale="tiny", procs=2)
    chaos = ChaosRequest(app="water", scale="tiny", procs=2)
    assert run.cache_key() != chaos.cache_key()


# ---------------------------------------------------------------------- #
# the result cache
# ---------------------------------------------------------------------- #
KEY_A = "a" * 64
KEY_B = "b" * 64


def test_cache_memory_tier_hit_miss_counters():
    cache = ResultCache()
    assert cache.get(KEY_A) is None
    cache.put(KEY_A, "text-a\n")
    assert cache.get(KEY_A) == "text-a\n"
    assert cache.counters() == {"hits": 1, "misses": 1, "stores": 1,
                                "entries": 1}


def test_cache_rejects_malformed_keys():
    cache = ResultCache()
    with pytest.raises(ValueError, match="malformed cache key"):
        cache.get("short")
    with pytest.raises(ValueError, match="malformed cache key"):
        cache.put("A" * 64, "upper-case is not a sha256 hexdigest")


def test_cache_disk_tier_survives_restart(tmp_path):
    first = ResultCache(directory=str(tmp_path))
    first.put(KEY_A, "persisted\n", schema=SERVE_SCHEMA)
    # A fresh instance over the same directory re-warms from disk.
    second = ResultCache(directory=str(tmp_path))
    assert KEY_A in second
    assert second.get(KEY_A) == "persisted\n"
    meta = second.meta(KEY_A)
    assert meta["schema"] == SERVE_SCHEMA
    assert meta["key"] == KEY_A
    assert "stored_at" in meta
    # The on-disk entry is the exact text, directly inspectable.
    assert (tmp_path / f"{KEY_A}.json").read_text() == "persisted\n"


def test_cache_memory_eviction_keeps_disk_entries(tmp_path):
    cache = ResultCache(directory=str(tmp_path), max_entries=1)
    cache.put(KEY_A, "a\n")
    cache.put(KEY_B, "b\n")  # evicts KEY_A from the memory tier
    assert cache._memory == {KEY_B: "b\n"}
    # ...but the disk tier still serves it.
    assert cache.get(KEY_A) == "a\n"
    assert len(cache) == 2


def test_cache_contains_does_not_count():
    cache = ResultCache()
    assert KEY_A not in cache
    assert cache.counters()["misses"] == 0


# ---------------------------------------------------------------------- #
# submit: the cached and fresh paths return identical bytes
# ---------------------------------------------------------------------- #
def test_submit_miss_then_hit_byte_identical():
    cache = ResultCache()
    request = RunRequest(**TINY_RUN)
    first = submit(request, cache=cache)
    second = submit(request, cache=cache)
    fresh = submit(request)  # no cache at all: recompute from scratch
    assert not first.cache_hit
    assert second.cache_hit
    assert not fresh.cache_hit
    assert first.text == second.text == fresh.text
    assert first.cache_key == request.cache_key()
    assert cache.counters()["hits"] == 1


def test_submit_document_is_schema_valid_and_canonical():
    result = submit(RunRequest(**TINY_RUN))
    doc = json.loads(result.text)
    assert doc["schema"] == SERVE_SCHEMA
    assert doc["kind"] == "run"
    assert doc["cache_key"] == result.cache_key
    assert validate_snapshot(doc) == []
    # No wall-clock fields anywhere: the document must be reproducible.
    assert set(doc) == {"schema", "kind", "request", "cache_key", "result"}


def test_submit_sweep_matches_serial_snapshot_doc():
    from repro.apps import MachineKind
    from repro.fleet import sweep_snapshot_doc
    from repro.lab import locality_sweep

    request = SweepRequest(app="water", machine="ipsc860", scale="tiny",
                           procs=(1, 2))
    result = submit(request, policy=ExecutionPolicy(jobs=2))
    rows = locality_sweep("water", MachineKind("ipsc860"), [1, 2], "tiny")
    expected = sweep_snapshot_doc("water", "ipsc860", "tiny", rows)
    assert result.doc["result"] == expected


def test_result_doc_rejected_if_payload_corrupted():
    request = RunRequest(**TINY_RUN)
    doc = result_doc(request, {"not": "metrics"})
    assert any("result" in p for p in validate_snapshot(doc))


# ---------------------------------------------------------------------- #
# the exit-code taxonomy
# ---------------------------------------------------------------------- #
def test_exit_code_taxonomy():
    from repro.errors import JadeError, SimulationError

    assert exit_code_for(ExperimentError("bad args")) == EXIT_BAD_REQUEST
    assert exit_code_for(SimulationError("boom")) == EXIT_SIMULATION_RAISED
    assert exit_code_for(JadeError("boom")) == EXIT_SIMULATION_RAISED
    assert exit_code_for(RuntimeError("boom")) == EXIT_SIMULATION_RAISED


def test_sim_time_limit_is_simulation_raised_not_bad_request():
    from repro.errors import SimTimeLimitError

    exc = SimTimeLimitError("past the guard")
    assert exit_code_for(exc) == EXIT_SIMULATION_RAISED


def test_execution_policy_validates():
    with pytest.raises(ExperimentError):
        ExecutionPolicy(jobs=0)
    with pytest.raises(ExperimentError):
        ExecutionPolicy(timeout=0.0)
    with pytest.raises(ExperimentError):
        ExecutionPolicy(retries=-1)


# ---------------------------------------------------------------------- #
# the describe catalog
# ---------------------------------------------------------------------- #
def test_describe_catalog_shape():
    catalog = describe_catalog()
    assert set(catalog["applications"]) == {"cholesky", "ocean", "string",
                                            "water"}
    for info in catalog["applications"].values():
        assert set(info) == {"levels", "scales", "supports_task_placement"}
        assert "locality" in info["levels"]
    assert catalog["request_kinds"] == ["run", "sweep", "chaos"]
    assert SERVE_SCHEMA in catalog["schemas"]
    assert "replication" in catalog["switches"]
    # Only apps that support task placement offer the level (§5.2).
    assert ("task_placement" in catalog["applications"]["ocean"]["levels"]) \
        == catalog["applications"]["ocean"]["supports_task_placement"]


def test_describe_catalog_matches_cli_json(capsys):
    from repro.__main__ import main

    assert main(["describe", "--json"]) == 0
    printed = json.loads(capsys.readouterr().out)
    assert printed == describe_catalog()
