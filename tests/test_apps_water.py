"""Tests for the Water application."""

import numpy as np
import pytest

from repro.apps import MachineKind, Water, WaterConfig
from repro.core import run_stripped
from repro.runtime import RuntimeOptions, run_message_passing, run_shared_memory
from repro.runtime.options import LocalityLevel

from tests.helpers import assert_matches_stripped


def test_program_structure():
    app = Water(WaterConfig.tiny())
    prog = app.build(4)
    # 2 iterations x (4 force tasks + serial + 4 potential tasks + serial)
    assert len(prog.parallel_tasks) == 2 * 2 * 4
    assert len(prog.serial_sections) == 2 * 2
    # Locality object of every task is its contribution array.
    for task in prog.parallel_tasks:
        assert task.locality_object.name.startswith("contrib")


def test_paper_config_object_sizes():
    cfg = WaterConfig.paper()
    assert cfg.positions_nbytes() == 165_888  # §5.3's updated object
    assert cfg.iterations == 8
    assert cfg.cost_molecules == 1728


def test_stripped_time_matches_calibration():
    app = Water(WaterConfig.paper())
    prog = app.build(32, machine=MachineKind.IPSC860)
    assert prog.total_cost() == pytest.approx(2406.72, rel=1e-6)
    prog_dash = app.build(32, machine=MachineKind.DASH)
    assert prog_dash.total_cost() == pytest.approx(3285.90, rel=1e-6)


def test_stripped_physics_is_sane():
    app = Water(WaterConfig.tiny())
    prog = app.build(4)
    result = run_stripped(prog)
    positions = result.payload(prog.registry.by_name("positions"))
    assert np.all(np.isfinite(positions))
    assert np.all((positions >= 0.0) & (positions < 1.0))
    energy = result.payload(prog.registry.by_name("energy"))
    assert energy[0] > 0.0


def test_task_decomposition_independent_of_processor_count():
    """P tasks per phase, always covering all molecules exactly once."""
    for P in (1, 3, 8):
        app = Water(WaterConfig.tiny())
        prog = app.build(P)
        serial = run_stripped(prog)
        app1 = Water(WaterConfig.tiny())
        base = run_stripped(app1.build(1))
        pos_p = serial.payload(prog.registry.by_name("positions"))
        pos_1 = base.payload(app1.build(1).registry.by_name("positions"))
        # Different decompositions sum in different orders; results agree
        # to floating-point reassociation tolerance.
        assert np.allclose(pos_p, pos_1, atol=1e-12)


@pytest.mark.parametrize("nprocs", [1, 2, 4])
def test_runs_on_both_machines(nprocs):
    app = Water(WaterConfig.tiny())
    prog_mp = app.build(nprocs, machine=MachineKind.IPSC860)
    assert_matches_stripped(prog_mp, run_message_passing(prog_mp, nprocs))
    prog_sm = app.build(nprocs, machine=MachineKind.DASH)
    assert_matches_stripped(prog_sm, run_shared_memory(prog_sm, nprocs))


def test_no_task_placement_support():
    app = Water(WaterConfig.tiny())
    with pytest.raises(ValueError):
        app.build(4, level=LocalityLevel.TASK_PLACEMENT)


def test_water_reaches_full_locality_on_mp():
    app = Water(WaterConfig.tiny())
    prog = app.build(4)
    metrics = run_message_passing(prog, 4, RuntimeOptions())
    assert metrics.task_locality_pct == pytest.approx(100.0)


def test_positions_object_enters_broadcast_mode():
    """Every processor reads positions every phase: §5.3's Water pattern."""
    app = Water(WaterConfig(iterations=3))
    prog = app.build(4)
    metrics = run_message_passing(prog, 4, RuntimeOptions())
    assert metrics.broadcasts >= 1
