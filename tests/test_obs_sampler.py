"""Unit tests for the retrospective time-series sampler."""

import pytest

from repro.obs.sampler import (
    IntervalTrack,
    StepTrack,
    build_timeline,
    sample_grid,
)


# --------------------------------------------------------------------- #
# StepTrack
# --------------------------------------------------------------------- #
def test_step_track_samples_last_value_at_or_before():
    tr = StepTrack("q")
    tr.record(1.0, 3)
    tr.record(2.0, 5)
    tr.record(4.0, 1)
    assert tr.sample(0.5) == 0.0
    assert tr.sample(1.0) == 3
    assert tr.sample(1.9) == 3
    assert tr.sample(2.0) == 5
    assert tr.sample(100.0) == 1
    assert tr.peak() == 5


def test_step_track_same_time_overwrites():
    tr = StepTrack()
    tr.record(1.0, 3)
    tr.record(1.0, 7)
    assert len(tr) == 1
    assert tr.sample(1.0) == 7


def test_step_track_empty():
    tr = StepTrack()
    assert tr.sample(5.0) == 0.0
    assert tr.peak() == 0.0


# --------------------------------------------------------------------- #
# IntervalTrack
# --------------------------------------------------------------------- #
def test_interval_track_clips_to_window():
    tr = IntervalTrack("tx0")
    tr.record(1.0, 2.0)   # busy [1, 3)
    tr.record(5.0, 1.0)   # busy [5, 6)
    assert tr.total == pytest.approx(3.0)
    assert tr.busy_within(0.0, 10.0) == pytest.approx(3.0)
    assert tr.busy_within(2.0, 5.5) == pytest.approx(1.5)
    assert tr.busy_within(3.0, 5.0) == 0.0
    assert tr.utilization(1.0, 3.0) == pytest.approx(1.0)
    assert tr.utilization(0.0, 4.0) == pytest.approx(0.5)


def test_interval_track_ignores_zero_duration():
    tr = IntervalTrack()
    tr.record(1.0, 0.0)
    assert tr.total == 0.0
    assert tr.busy_within(0.0, 2.0) == 0.0


# --------------------------------------------------------------------- #
# sample_grid
# --------------------------------------------------------------------- #
def test_sample_grid_divides_horizon():
    dt, times = sample_grid(10.0, samples=5)
    assert dt == pytest.approx(2.0)
    assert times == pytest.approx([2.0, 4.0, 6.0, 8.0, 10.0])


def test_sample_grid_always_ends_at_horizon():
    _dt, times = sample_grid(1.0, interval=0.3)
    assert times[-1] == pytest.approx(1.0)
    # Explicit interval larger than the horizon still yields one sample.
    _dt, times = sample_grid(1.0, interval=5.0)
    assert times == [1.0]


def test_sample_grid_zero_horizon_is_empty():
    assert sample_grid(0.0) == (0.0, [])


# --------------------------------------------------------------------- #
# build_timeline
# --------------------------------------------------------------------- #
def test_build_timeline_rows_and_peaks():
    ready = StepTrack("ready")
    ready.record(0.0, 2)
    ready.record(5.0, 0)
    inflight = StepTrack("inflight")
    inflight.record(1.0, 1)
    inflight.record(2.0, 0)
    tx = IntervalTrack("tx0")
    tx.record(0.0, 5.0)
    timeline = build_timeline(10.0, ready, inflight, {"tx0": tx}, samples=2)
    rows = timeline["samples"]
    assert [r["t"] for r in rows] == pytest.approx([5.0, 10.0])
    assert rows[0]["ready_tasks"] == 0      # changed exactly at t=5
    assert rows[0]["link_utilization"]["tx0"] == pytest.approx(1.0)
    assert rows[1]["link_utilization"]["tx0"] == pytest.approx(0.0)
    assert timeline["peaks"] == {"ready_tasks": 2, "inflight_messages": 1}


def test_build_timeline_empty_run():
    timeline = build_timeline(0.0, StepTrack(), StepTrack(), {})
    assert timeline["samples"] == []
    assert timeline["interval"] == 0.0
