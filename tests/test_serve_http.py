"""Job lifecycle, transports and the HTTP server end-to-end.

One module-scoped server fixture on an OS-assigned port keeps the suite
fast; every HTTP test drives the real asyncio server through the real
``HttpTransport`` (plus raw ``urllib`` where headers matter).
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ExperimentError
from repro.serve import (
    ChaosRequest,
    ResultCache,
    RunRequest,
    SweepRequest,
    available_transports,
    create_transport,
    submit,
)
from repro.serve.client import HttpTransport
from repro.serve.jobs import JobManager
from repro.serve.server import ServeServer
from repro.serve.transport import InProcessTransport

TINY_RUN = dict(app="water", machine="ipsc860", scale="tiny", procs=2)


# ---------------------------------------------------------------------- #
# the job manager
# ---------------------------------------------------------------------- #
def test_job_manager_lifecycle_and_cache_hit():
    manager = JobManager(workers=1)
    try:
        request = RunRequest(**TINY_RUN)
        job = manager.submit(request)
        assert job.id == "j000001"
        assert job.cache_key == request.cache_key()
        done = manager.wait(job.id, timeout=120)
        assert done.state == "done"
        assert done.cache_hit is False
        text = manager.result_text(job.id)
        # The second submission completes synchronously from the cache,
        # with byte-identical result text.
        again = manager.submit(request)
        assert again.state == "done"
        assert again.cache_hit is True
        assert again.result_text == text
        doc = again.to_doc()
        assert doc["cache"] == "hit"
        assert doc["state"] == "done"
    finally:
        manager.shutdown()


def test_job_manager_failure_keeps_taxonomy():
    manager = JobManager(workers=1)
    try:
        # The guard fires mid-simulation: a *simulation* failure (exit 3),
        # not a malformed request.
        request = RunRequest(app="water", scale="tiny", procs=2,
                             max_sim_time=1e-9)
        job = manager.submit(request)
        done = manager.wait(job.id, timeout=120)
        assert done.state == "failed"
        assert done.error["exit_code"] == 3
        assert done.error["type"] == "SimTimeLimitError"
        with pytest.raises(ExperimentError, match="failed"):
            manager.result_text(job.id)
        # A failure is never cached: nothing was stored under the key.
        assert request.cache_key() not in manager.cache
    finally:
        manager.shutdown()


def test_job_manager_unknown_job_and_shutdown():
    manager = JobManager(workers=1)
    with pytest.raises(ExperimentError, match="unknown job"):
        manager.get("j999999")
    manager.shutdown()
    with pytest.raises(ExperimentError, match="shut down"):
        manager.submit(RunRequest(**TINY_RUN))


def test_job_manager_table_limit():
    manager = JobManager(workers=1, max_jobs=1)
    try:
        manager.submit(RunRequest(**TINY_RUN))
        with pytest.raises(ExperimentError, match="job table full"):
            manager.submit(RunRequest(app="water", scale="tiny", procs=4))
    finally:
        manager.shutdown()


# ---------------------------------------------------------------------- #
# the transport registry
# ---------------------------------------------------------------------- #
def test_registry_lists_all_backends():
    assert set(available_transports()) == {"inprocess", "http", "grpc",
                                           "mqtt"}


def test_create_transport_unknown_kind():
    with pytest.raises(ExperimentError, match="unknown transport"):
        create_transport("carrier-pigeon")


@pytest.mark.parametrize("kind,module", [("grpc", "grpc"),
                                         ("mqtt", "paho.mqtt")])
def test_optional_transports_name_their_missing_extra(kind, module):
    # The container deliberately ships without these packages; the stubs
    # must fail with a message naming the extra, not an ImportError.
    with pytest.raises(ExperimentError) as exc_info:
        create_transport(kind)
    assert kind in str(exc_info.value)
    message = str(exc_info.value)
    assert module in message or "registry stub" in message


def test_inprocess_transport_round_trip():
    transport = create_transport("inprocess", workers=1)
    try:
        assert isinstance(transport, InProcessTransport)
        request = RunRequest(**TINY_RUN)
        job = transport.submit(request)
        done = transport.wait(job["id"], timeout=120)
        assert done["state"] == "done"
        text = transport.result_text(job["id"])
        assert transport.result(job["id"]) == json.loads(text)
        # Byte-identical to a direct library submission.
        assert text == submit(request).text
        health = transport.health()
        assert health["status"] == "ok"
        assert health["jobs"]["done"] == 1
    finally:
        transport.close()


# ---------------------------------------------------------------------- #
# the HTTP server, end to end
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def server():
    srv = ServeServer(port=0, cache=ResultCache(), workers=2)
    srv.start_background()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    return HttpTransport(server.url, request_timeout=120)


def _raw(server, method, path, body=None):
    req = urllib.request.Request(f"{server.url}{path}", data=body,
                                 method=method)
    try:
        with urllib.request.urlopen(req, timeout=120) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def test_http_submit_twice_second_is_cache_hit(server, client):
    request = RunRequest(**TINY_RUN)
    first = client.submit(request)
    assert first["kind"] == "run"
    assert first["cache_key"] == request.cache_key()
    done = client.wait(first["id"], timeout=120)
    assert done["state"] == "done"
    assert done["cache"] == "miss"

    second = client.submit(request)
    assert second["state"] == "done"  # synchronous: no worker involved
    assert second["cache"] == "hit"

    # Result documents are byte-identical, and the X-Repro-Cache header
    # tells the two apart.
    status1, headers1, body1 = _raw(server, "GET",
                                    f"/v1/jobs/{first['id']}/result")
    status2, headers2, body2 = _raw(server, "GET",
                                    f"/v1/jobs/{second['id']}/result")
    assert status1 == status2 == 200
    assert headers1["X-Repro-Cache"] == "miss"
    assert headers2["X-Repro-Cache"] == "hit"
    assert body1 == body2
    assert body1 == submit(request).text.encode("utf-8")


def test_http_enveloped_and_flat_bodies_equivalent(server, client):
    request = SweepRequest(app="water", machine="ipsc860", scale="tiny",
                           procs=(1, 2))
    flat = client.submit(request)
    client.wait(flat["id"], timeout=300)
    status, _, body = _raw(
        server, "POST", "/v1/jobs",
        json.dumps({"kind": "sweep",
                    "request": request.to_json()}).encode("utf-8"))
    assert status == 200
    enveloped = json.loads(body)
    assert enveloped["cache_key"] == flat["cache_key"]
    assert enveloped["cache"] == "hit"


def test_http_chaos_request_runs(server, client):
    from repro.faults import FaultSpec

    request = ChaosRequest(app="water", procs=2,
                           faults=FaultSpec(drop_rate=0.02, seed=1))
    job = client.submit(request)
    done = client.wait(job["id"], timeout=300)
    assert done["state"] == "done"
    doc = client.result(job["id"])
    assert doc["kind"] == "chaos"
    assert doc["result"]["verdicts"] == {"coherent": True,
                                         "deterministic": True}


def test_http_bad_request_is_400_with_taxonomy(server, client):
    status, _, body = _raw(server, "POST", "/v1/jobs",
                           json.dumps({"kind": "run",
                                       "app": "nonesuch"}).encode("utf-8"))
    assert status == 400
    doc = json.loads(body)
    assert doc["exit_code"] == 2
    assert "valid applications" in doc["error"]
    # The transport surfaces the server-side message.
    with pytest.raises(ExperimentError, match="valid applications"):
        client.submit.__self__._call("POST", "/v1/jobs",
                                     {"kind": "run", "app": "nonesuch"})


def test_http_non_json_body_is_400(server):
    status, _, body = _raw(server, "POST", "/v1/jobs", b"this is not json")
    assert status == 400
    assert json.loads(body)["exit_code"] == 2


def test_http_unknown_job_is_404(server):
    for path in ("/v1/jobs/j999999", "/v1/jobs/j999999/result"):
        status, _, body = _raw(server, "GET", path)
        assert status == 404
        assert "unknown job" in json.loads(body)["error"]


def test_http_unknown_endpoint_is_404_and_bad_method_405(server):
    status, _, _ = _raw(server, "GET", "/v1/teleport")
    assert status == 404
    status, _, body = _raw(server, "POST", "/v1/jobs/j000001")
    assert status == 405
    assert json.loads(body)["exit_code"] == 2


def test_http_failed_job_maps_exit_code_to_500(server, client):
    request = RunRequest(app="water", scale="tiny", procs=2,
                         max_sim_time=1e-9)
    job = client.submit(request)
    done = client.wait(job["id"], timeout=120)
    assert done["state"] == "failed"
    assert done["error"]["exit_code"] == 3
    status, _, body = _raw(server, "GET", f"/v1/jobs/{job['id']}/result")
    assert status == 500
    doc = json.loads(body)
    assert doc["exit_code"] == 3
    assert doc["type"] == "SimTimeLimitError"


def test_http_health_and_describe(server, client):
    from repro.serve.api import describe_catalog

    health = client.health()
    assert health["status"] == "ok"
    assert health["workers"] == 2
    assert set(health["cache"]) == {"hits", "misses", "stores", "entries"}
    # GET /v1/describe is the same catalog the CLI prints (satellite 1).
    assert client.describe() == describe_catalog()


def test_http_transport_unreachable_server():
    client = HttpTransport("http://127.0.0.1:9", request_timeout=2)
    with pytest.raises(ExperimentError, match="cannot reach"):
        client.health()
