"""Job lifecycle, transports and the HTTP server end-to-end.

One module-scoped server fixture on an OS-assigned port keeps the suite
fast; every HTTP test drives the real asyncio server through the real
``HttpTransport`` (plus raw ``urllib`` where headers matter).
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ExperimentError
from repro.serve import (
    ChaosRequest,
    ResultCache,
    RunRequest,
    SweepRequest,
    available_transports,
    create_transport,
    submit,
)
from repro.serve.client import HttpTransport
from repro.serve.jobs import JobManager
from repro.serve.server import ServeServer
from repro.serve.transport import InProcessTransport

TINY_RUN = dict(app="water", machine="ipsc860", scale="tiny", procs=2)


# ---------------------------------------------------------------------- #
# the job manager
# ---------------------------------------------------------------------- #
def test_job_manager_lifecycle_and_cache_hit():
    manager = JobManager(workers=1)
    try:
        request = RunRequest(**TINY_RUN)
        job = manager.submit(request)
        assert job.id == "j000001"
        assert job.cache_key == request.cache_key()
        done = manager.wait(job.id, timeout=120)
        assert done.state == "done"
        assert done.cache_hit is False
        text = manager.result_text(job.id)
        # The second submission completes synchronously from the cache,
        # with byte-identical result text.
        again = manager.submit(request)
        assert again.state == "done"
        assert again.cache_hit is True
        assert again.result_text == text
        doc = again.to_doc()
        assert doc["cache"] == "hit"
        assert doc["state"] == "done"
    finally:
        manager.shutdown()


def test_job_manager_failure_keeps_taxonomy():
    manager = JobManager(workers=1)
    try:
        # The guard fires mid-simulation: a *simulation* failure (exit 3),
        # not a malformed request.
        request = RunRequest(app="water", scale="tiny", procs=2,
                             max_sim_time=1e-9)
        job = manager.submit(request)
        done = manager.wait(job.id, timeout=120)
        assert done.state == "failed"
        assert done.error["exit_code"] == 3
        assert done.error["type"] == "SimTimeLimitError"
        with pytest.raises(ExperimentError, match="failed"):
            manager.result_text(job.id)
        # A failure is never cached: nothing was stored under the key.
        assert request.cache_key() not in manager.cache
    finally:
        manager.shutdown()


def test_job_manager_unknown_job_and_shutdown():
    manager = JobManager(workers=1)
    with pytest.raises(ExperimentError, match="unknown job"):
        manager.get("j999999")
    manager.shutdown()
    with pytest.raises(ExperimentError, match="shut down"):
        manager.submit(RunRequest(**TINY_RUN))


def test_job_manager_table_limit():
    manager = JobManager(workers=1, max_jobs=1)
    try:
        manager.submit(RunRequest(**TINY_RUN))
        with pytest.raises(ExperimentError, match="job table full"):
            manager.submit(RunRequest(app="water", scale="tiny", procs=4))
    finally:
        manager.shutdown()


# ---------------------------------------------------------------------- #
# the transport registry
# ---------------------------------------------------------------------- #
def test_registry_lists_all_backends():
    assert set(available_transports()) == {"inprocess", "http", "worker",
                                           "grpc", "mqtt"}


def test_create_transport_unknown_kind():
    with pytest.raises(ExperimentError, match="unknown transport"):
        create_transport("carrier-pigeon")


@pytest.mark.parametrize("kind,module", [("grpc", "grpc"),
                                         ("mqtt", "paho.mqtt")])
def test_optional_transports_name_their_missing_extra(kind, module):
    # The container deliberately ships without these packages; the stubs
    # must fail with a message naming the extra, not an ImportError.
    with pytest.raises(ExperimentError) as exc_info:
        create_transport(kind)
    assert kind in str(exc_info.value)
    message = str(exc_info.value)
    assert module in message or "registry stub" in message


def test_inprocess_transport_round_trip():
    transport = create_transport("inprocess", workers=1)
    try:
        assert isinstance(transport, InProcessTransport)
        request = RunRequest(**TINY_RUN)
        job = transport.submit(request)
        done = transport.wait(job["id"], timeout=120)
        assert done["state"] == "done"
        text = transport.result_text(job["id"])
        assert transport.result(job["id"]) == json.loads(text)
        # Byte-identical to a direct library submission.
        assert text == submit(request).text
        health = transport.health()
        assert health["status"] == "ok"
        assert health["jobs"]["done"] == 1
    finally:
        transport.close()


# ---------------------------------------------------------------------- #
# the HTTP server, end to end
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def server():
    srv = ServeServer(port=0, cache=ResultCache(), workers=2)
    srv.start_background()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    return HttpTransport(server.url, request_timeout=120)


def _raw(server, method, path, body=None):
    req = urllib.request.Request(f"{server.url}{path}", data=body,
                                 method=method)
    try:
        with urllib.request.urlopen(req, timeout=120) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def test_http_submit_twice_second_is_cache_hit(server, client):
    request = RunRequest(**TINY_RUN)
    first = client.submit(request)
    assert first["kind"] == "run"
    assert first["cache_key"] == request.cache_key()
    done = client.wait(first["id"], timeout=120)
    assert done["state"] == "done"
    assert done["cache"] == "miss"

    second = client.submit(request)
    assert second["state"] == "done"  # synchronous: no worker involved
    assert second["cache"] == "hit"

    # Result documents are byte-identical, and the X-Repro-Cache header
    # tells the two apart.
    status1, headers1, body1 = _raw(server, "GET",
                                    f"/v1/jobs/{first['id']}/result")
    status2, headers2, body2 = _raw(server, "GET",
                                    f"/v1/jobs/{second['id']}/result")
    assert status1 == status2 == 200
    assert headers1["X-Repro-Cache"] == "miss"
    assert headers2["X-Repro-Cache"] == "hit"
    # Job-scoped responses name their job for access-log correlation.
    assert headers1["X-Repro-Job"] == first["id"]
    assert headers2["X-Repro-Job"] == second["id"]
    assert body1 == body2
    assert body1 == submit(request).text.encode("utf-8")


def test_http_enveloped_and_flat_bodies_equivalent(server, client):
    request = SweepRequest(app="water", machine="ipsc860", scale="tiny",
                           procs=(1, 2))
    flat = client.submit(request)
    client.wait(flat["id"], timeout=300)
    status, _, body = _raw(
        server, "POST", "/v1/jobs",
        json.dumps({"kind": "sweep",
                    "request": request.to_json()}).encode("utf-8"))
    assert status == 200
    enveloped = json.loads(body)
    assert enveloped["cache_key"] == flat["cache_key"]
    assert enveloped["cache"] == "hit"


def test_http_chaos_request_runs(server, client):
    from repro.faults import FaultSpec

    request = ChaosRequest(app="water", procs=2,
                           faults=FaultSpec(drop_rate=0.02, seed=1))
    job = client.submit(request)
    done = client.wait(job["id"], timeout=300)
    assert done["state"] == "done"
    doc = client.result(job["id"])
    assert doc["kind"] == "chaos"
    assert doc["result"]["verdicts"] == {"coherent": True,
                                         "deterministic": True}


def test_http_bad_request_is_400_with_taxonomy(server, client):
    status, _, body = _raw(server, "POST", "/v1/jobs",
                           json.dumps({"kind": "run",
                                       "app": "nonesuch"}).encode("utf-8"))
    assert status == 400
    doc = json.loads(body)
    assert doc["exit_code"] == 2
    assert "valid applications" in doc["error"]
    # The transport surfaces the server-side message.
    with pytest.raises(ExperimentError, match="valid applications"):
        client.submit.__self__._call("POST", "/v1/jobs",
                                     {"kind": "run", "app": "nonesuch"})


def test_http_non_json_body_is_400(server):
    status, _, body = _raw(server, "POST", "/v1/jobs", b"this is not json")
    assert status == 400
    assert json.loads(body)["exit_code"] == 2


def test_http_unknown_job_is_404(server):
    for path in ("/v1/jobs/j999999", "/v1/jobs/j999999/result"):
        status, _, body = _raw(server, "GET", path)
        assert status == 404
        assert "unknown job" in json.loads(body)["error"]


def test_http_unknown_endpoint_is_404_and_bad_method_405(server):
    status, _, _ = _raw(server, "GET", "/v1/teleport")
    assert status == 404
    status, _, body = _raw(server, "POST", "/v1/jobs/j000001")
    assert status == 405
    assert json.loads(body)["exit_code"] == 2


def test_http_failed_job_maps_exit_code_to_500(server, client):
    request = RunRequest(app="water", scale="tiny", procs=2,
                         max_sim_time=1e-9)
    job = client.submit(request)
    done = client.wait(job["id"], timeout=120)
    assert done["state"] == "failed"
    assert done["error"]["exit_code"] == 3
    status, _, body = _raw(server, "GET", f"/v1/jobs/{job['id']}/result")
    assert status == 500
    doc = json.loads(body)
    assert doc["exit_code"] == 3
    assert doc["type"] == "SimTimeLimitError"


def test_http_health_and_describe(server, client):
    from repro.serve.api import describe_catalog

    health = client.health()
    assert health["status"] == "ok"
    assert health["workers"] == 2
    assert health["uptime"] >= 0
    assert set(health["cache"]) == {"hits", "misses", "stores", "entries",
                                    "evictions", "disk_entries",
                                    "disk_bytes"}
    assert set(health["counters"]) == {"submitted", "completed", "failed"}
    # Monotonic totals reconcile with the state counts: every job this
    # module submitted either finished or is still in flight.
    jobs = health["jobs"]
    assert (health["counters"]["completed"] + health["counters"]["failed"]
            == jobs["done"] + jobs["failed"])
    # GET /v1/describe is the same catalog the CLI prints (satellite 1).
    assert client.describe() == describe_catalog()


def test_http_transport_unreachable_server():
    client = HttpTransport("http://127.0.0.1:9", request_timeout=2)
    with pytest.raises(ExperimentError, match="cannot reach"):
        client.health()


# ---------------------------------------------------------------------- #
# telemetry: /v1/metrics, repro status, access log, per-job traces
# ---------------------------------------------------------------------- #
def test_http_metrics_both_formats_reconcile(tmp_path):
    """A fresh server + registry: after two submissions of the same run,
    both metric expositions show exactly one cache hit and reconcile
    with the health document."""
    from repro.obs.schema import TELEMETRY_SCHEMA, validate_snapshot
    from repro.telemetry.metrics import (
        MetricsRegistry,
        parse_prometheus_text,
        sample_value,
    )

    registry = MetricsRegistry()
    cache = ResultCache(directory=str(tmp_path / "cache"), registry=registry)
    srv = ServeServer(port=0, cache=cache, workers=1, registry=registry)
    srv.start_background()
    try:
        transport = HttpTransport(srv.url, request_timeout=120)
        request = RunRequest(**TINY_RUN)
        first = transport.submit(request)
        transport.wait(first["id"], timeout=120)
        second = transport.submit(request)
        assert second["cache"] == "hit"

        status, headers, body = _raw(srv, "GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        parsed = parse_prometheus_text(body.decode("utf-8"))
        assert parsed["types"]["repro_cache_hits_total"] == "counter"
        assert parsed["types"]["repro_job_latency_seconds"] == "histogram"
        assert sample_value(parsed, "repro_cache_hits_total") == 1
        assert sample_value(parsed, "repro_cache_misses_total") == 1
        assert sample_value(parsed, "repro_jobs_submitted_total",
                            kind="run") == 2
        assert sample_value(parsed, "repro_jobs_completed_total",
                            kind="run", cache="miss") == 1
        assert sample_value(parsed, "repro_jobs_completed_total",
                            kind="run", cache="hit") == 1
        assert sample_value(parsed, "repro_job_latency_seconds_count",
                            kind="run") == 2
        assert sample_value(parsed, "repro_jobs_queued") == 0
        assert sample_value(parsed, "repro_jobs_running") == 0

        snapshot = transport.metrics_json()
        assert snapshot["schema"] == TELEMETRY_SCHEMA
        assert validate_snapshot(snapshot) == []
        # The JSON exposition agrees with the Prometheus one, the health
        # document and the cache's own stats.
        health = transport.health()
        by_name = {entry["name"]: entry for entry in snapshot["metrics"]}
        assert by_name["repro_cache_hits_total"]["samples"][0]["value"] \
            == health["cache"]["hits"] == 1
        assert by_name["repro_cache_entries"]["samples"][0]["value"] \
            == health["cache"]["entries"] == 1
        assert by_name["repro_cache_disk_bytes"]["samples"][0]["value"] \
            == health["cache"]["disk_bytes"] > 0
        assert health["counters"] == {"submitted": 2, "completed": 2,
                                      "failed": 0}
    finally:
        srv.stop()


def test_http_metrics_unknown_format_is_400(server):
    status, _, body = _raw(server, "GET", "/v1/metrics?format=xml")
    assert status == 400
    assert json.loads(body)["exit_code"] == 2


def test_http_access_log_and_job_correlation(server, caplog):
    import logging

    with caplog.at_level(logging.INFO, logger="repro.serve.http"):
        request = RunRequest(**TINY_RUN)
        job = server.manager.submit(request)
        server.manager.wait(job.id, timeout=120)
        _raw(server, "GET", f"/v1/jobs/{job.id}")
        _raw(server, "GET", "/v1/nonesuch")
    events = [(r.getMessage(), getattr(r, "fields", {}),
               getattr(r, "job_id", None)) for r in caplog.records]
    by_path = {fields.get("path"): (fields, job_id)
               for event, fields, job_id in events if event == "http_request"}
    fields, job_id = by_path[f"/v1/jobs/{job.id}"]
    assert fields["method"] == "GET"
    assert fields["status"] == 200
    assert fields["duration_s"] >= 0
    assert job_id == job.id  # correlation via X-Repro-Job
    fields, _ = by_path["/v1/nonesuch"]
    assert fields["status"] == 404
    assert fields["exit_code"] == 2  # the taxonomy code of the error body


def test_serve_writes_per_job_trace(tmp_path):
    trace_dir = tmp_path / "traces"
    srv = ServeServer(port=0, cache=ResultCache(), workers=1,
                      trace_dir=str(trace_dir))
    srv.start_background()
    try:
        transport = HttpTransport(srv.url, request_timeout=120)
        job = transport.submit(RunRequest(**TINY_RUN))
        transport.wait(job["id"], timeout=120)
        trace_path = trace_dir / f"{job['id']}.trace.json"
        assert trace_path.exists()
        events = json.loads(trace_path.read_text())
        assert events  # the run produced a non-empty event timeline
        # Tracing is observation only: the traced result is byte-identical
        # to an untraced submission of the same request.
        assert transport.result_text(job["id"]) \
            == submit(RunRequest(**TINY_RUN)).text
    finally:
        srv.stop()


def test_repro_status_dashboard(server, capsys):
    from repro.__main__ import main

    assert main(["status", server.url]) == 0
    out = capsys.readouterr().out
    assert f"repro serve @ {server.url}" in out
    assert "jobs" in out and "cache" in out and "http" in out
    assert "hit ratio" in out


def test_repro_status_json_emits_raw_validated_snapshot(server, capsys):
    from repro.obs.schema import validate_snapshot
    from repro.__main__ import main

    assert main(["status", server.url, "--json"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert snapshot["schema"] == "repro.telemetry/1"
    assert validate_snapshot(snapshot) == []


def test_repro_status_unreachable_is_exit_2(capsys):
    from repro.__main__ import main

    assert main(["status", "http://127.0.0.1:9", "--timeout", "2"]) == 2
    assert "error:" in capsys.readouterr().err


def test_sigint_emits_shutdown_summary():
    # The real Ctrl-C path: a SIGINT delivered while `repro serve` blocks
    # in Thread.join() used to falsely mark the serve thread stopped, so
    # the process exited before the loop ran its shutdown tail and the
    # serve_stopped summary was lost.
    import os
    import signal
    import subprocess
    import sys
    import time

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(os.path.dirname(__file__), "..", "src"),
                    env.get("PYTHONPATH")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--log-json"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env)
    try:
        deadline = time.time() + 30
        banner = b""
        while time.time() < deadline and b"listening on" not in banner:
            time.sleep(0.1)
            banner += proc.stdout.read1(65536) if hasattr(
                proc.stdout, "read1") else b""
            if proc.poll() is not None:
                break
        assert proc.poll() is None, banner
        # Let the main thread settle into server.join() — the banner is
        # printed just before the KeyboardInterrupt guard is entered.
        time.sleep(0.5)
        proc.send_signal(signal.SIGINT)
        rest, _ = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    out = banner + rest
    assert proc.returncode == 0, out
    assert b'"event": "serve_stopped"' in out, out


# ---------------------------------------------------------------------- #
# overload shedding (bounded queue, 429 + Retry-After)
# ---------------------------------------------------------------------- #
def test_job_manager_sheds_when_queue_full():
    from repro.serve.jobs import Job, OverloadedError

    manager = JobManager(workers=1, max_queue=1)
    try:
        # Pin a queued job in the table (no pool involvement: the shed
        # decision is pure admission control, so the test is exact).
        filler = RunRequest(**TINY_RUN)
        manager._jobs["j-pinned"] = Job(id="j-pinned", request=filler,
                                        cache_key=filler.cache_key())
        probe = RunRequest(app="water", scale="tiny", procs=4)
        with pytest.raises(OverloadedError) as first:
            manager.submit(probe)
        assert first.value.retry_after == 1
        # Consecutive sheds deepen the advice along the backoff schedule.
        with pytest.raises(OverloadedError) as second:
            manager.submit(probe)
        assert second.value.retry_after == 2
        stats = manager.queue_stats()
        assert stats == {"max_queue": 1, "shed": 2, "shed_streak": 2}
        # A cache hit bypasses the queue entirely and resets the streak.
        hit = RunRequest(app="water", scale="tiny", procs=8)
        manager.cache.put(hit.cache_key(), '{"cached": true}\n')
        job = manager.submit(hit)
        assert job.state == "done" and job.cache_hit
        assert manager.queue_stats()["shed_streak"] == 0
        assert "queue" in manager.health()
    finally:
        manager.shutdown()


def test_job_manager_rejects_negative_max_queue():
    with pytest.raises(ExperimentError, match="max_queue"):
        JobManager(workers=1, max_queue=-1)


def test_http_full_queue_is_429_with_retry_after():
    from repro.serve.jobs import Job
    from repro.telemetry.metrics import MetricsRegistry

    srv = ServeServer(port=0, cache=ResultCache(), workers=1, max_queue=1,
                      registry=MetricsRegistry())
    srv.start_background()
    try:
        filler = RunRequest(**TINY_RUN)
        srv.manager._jobs["j-pinned"] = Job(id="j-pinned", request=filler,
                                            cache_key=filler.cache_key())
        body = json.dumps({"kind": "run", "app": "water", "scale": "tiny",
                           "procs": 4}).encode("utf-8")
        status, headers, payload = _raw(srv, "POST", "/v1/jobs", body)
        assert status == 429
        assert headers["Retry-After"] == "1"
        doc = json.loads(payload)
        assert doc["type"] == "OverloadedError"
        assert doc["exit_code"] == 2
        assert "queue full" in doc["error"]
        # The shed is visible in the metrics registry.
        status, _, metrics = _raw(srv, "GET", "/v1/metrics?format=json")
        assert status == 200
        families = {m["name"]: m for m in json.loads(metrics)["metrics"]}
        shed = families["repro_jobs_shed_total"]["samples"]
        assert sum(s["value"] for s in shed) == 1
    finally:
        srv.stop()
