"""Tests for the real-thread Jade executor."""

import threading
import time

import numpy as np
import pytest

from repro.core import AccessSpec, JadeBuilder, run_stripped
from repro.errors import AccessViolationError
from repro.parallel import ThreadedExecutor, run_threaded

from tests.helpers import (
    chain_program,
    fanout_program,
    independent_program,
    reduction_program,
)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_reduction_matches_stripped(workers):
    program = reduction_program(num_workers=6, iterations=3)
    expected = run_stripped(reduction_program(num_workers=6, iterations=3))
    result = run_threaded(program, num_workers=workers)
    for obj in program.registry:
        assert np.array_equal(expected.payload(obj), result.payload(obj))
    assert result.serial_sections_executed == 3


def test_chain_program():
    program = chain_program(length=15)
    expected = run_stripped(chain_program(length=15))
    result = run_threaded(program, num_workers=4)
    acc = program.registry.by_name("acc")
    assert np.array_equal(expected.payload(acc), result.payload(acc))


def test_fanout_program():
    program = fanout_program(num_readers=6)
    expected = run_stripped(fanout_program(num_readers=6))
    result = run_threaded(program, num_workers=3)
    for obj in program.registry:
        assert np.array_equal(expected.payload(obj), result.payload(obj))


def test_independent_tasks_actually_overlap():
    """Bodies that sleep (releasing the GIL) run concurrently."""
    jade = JadeBuilder()
    cells = [jade.object(f"c{i}", initial=np.zeros(1)) for i in range(4)]
    barrier = threading.Barrier(4, timeout=10)

    def body(i):
        def run(ctx):
            barrier.wait()  # deadlocks unless all four run concurrently
            ctx.wr(cells[i])[0] = i
        return run

    for i in range(4):
        jade.task(f"t{i}", body=body(i), wr=[cells[i]])
    result = run_threaded(jade.finish("barrier"), num_workers=4, timeout=30)
    assert result.max_concurrent >= 4
    for i in range(4):
        assert result.payload(cells[i])[0] == i


def test_conflicting_tasks_never_overlap():
    """Writers of one object must serialize, whatever the pool does."""
    jade = JadeBuilder()
    shared = jade.object("shared", initial=np.zeros(1))
    active = {"n": 0, "max": 0}
    guard = threading.Lock()

    def body(k):
        def run(ctx):
            with guard:
                active["n"] += 1
                active["max"] = max(active["max"], active["n"])
            time.sleep(0.002)
            ctx.wr(shared)[0] += 1
            with guard:
                active["n"] -= 1
        return run

    for k in range(10):
        jade.task(f"w{k}", body=body(k), rw=[shared])
    result = run_threaded(jade.finish("serialized"), num_workers=4)
    assert active["max"] == 1
    assert result.payload(shared)[0] == 10


def test_body_exception_propagates():
    jade = JadeBuilder()
    a = jade.object("a", initial=np.zeros(1))
    b = jade.object("b", initial=np.zeros(1))

    def bad(ctx):
        ctx.wr(b)  # undeclared

    jade.task("bad", body=bad, wr=[a])
    with pytest.raises(AccessViolationError):
        run_threaded(jade.finish("boom"), num_workers=2)


def test_empty_program():
    result = run_threaded(JadeBuilder().finish("empty"))
    assert result.tasks_executed == 0


def test_invalid_worker_count():
    with pytest.raises(ValueError):
        ThreadedExecutor(JadeBuilder().finish("x"), num_workers=0)


def test_apps_run_on_threads():
    """A real application (tiny Water) through the threaded executor."""
    from repro.apps import MachineKind, Water, WaterConfig

    app = Water(WaterConfig.tiny())
    program = app.build(4, machine=MachineKind.IPSC860)
    expected = run_stripped(app.build(4, machine=MachineKind.IPSC860))
    result = run_threaded(program, num_workers=4)
    positions = program.registry.by_name("positions")
    assert np.array_equal(expected.payload(positions), result.payload(positions))
