"""Unit tests for the iPSC/860 message network model."""

import pytest

from repro.machines import Hypercube, Network
from repro.machines.network import NetworkParams
from repro.sim import Simulator


def make_net(size=32, **overrides):
    sim = Simulator()
    params = NetworkParams(**overrides) if overrides else NetworkParams()
    net = Network(sim, Hypercube(size), params)
    net.record_messages = True
    return sim, net


def test_point_to_point_delivery_and_cost():
    sim, net = make_net()
    got = []
    net.send(0, 1, 1000, "data", on_delivered=got.append, payload="hello")
    sim.run()
    assert got == ["hello"]
    p = net.params
    expected = p.alpha_send + 1000 * p.per_byte + p.per_hop + p.alpha_recv
    assert sim.now == pytest.approx(expected)


def test_paper_calibration_165888_byte_send_is_about_70ms():
    """The paper: Water's 165,888-byte object takes ~0.07 s per send."""
    sim, net = make_net()
    net.send(0, 1, 165_888, "object")
    sim.run()
    assert 0.065 <= sim.now <= 0.075


def test_serial_sends_from_one_node_serialize_on_its_nic():
    """31 serial sends of the Water object ≈ 31 × 0.07 s (paper §5.3)."""
    sim, net = make_net()
    for dst in range(1, 32):
        net.send(0, dst, 165_888, "object")
    sim.run()
    assert 31 * 0.065 <= sim.now <= 31 * 0.078


def test_broadcast_is_logarithmic_not_linear():
    """Broadcast of the Water object ≈ 0.31 s on 32 nodes (paper §5.3)."""
    sim, net = make_net()
    arrived = []
    net.broadcast(0, 165_888, "object", on_delivered=lambda n, p: arrived.append(n))
    sim.run()
    assert sorted(arrived) == list(range(1, 32))
    assert 0.25 <= sim.now <= 0.45  # ~5 stages x 0.07s, some pipelining


def test_broadcast_on_subset_of_nodes():
    sim, net = make_net(size=32)
    arrived = []
    done = net.broadcast(0, 1000, "x", on_delivered=lambda n, p: arrived.append(n),
                         targets=list(range(24)))
    sim.run()
    assert sorted(arrived) == list(range(1, 24))
    assert done.fired


def test_broadcast_single_node_completes_immediately():
    sim, net = make_net(size=1)
    done = net.broadcast(0, 1000, "x")
    sim.run()
    assert done.fired


def test_messages_between_same_pair_are_fifo():
    sim, net = make_net()
    got = []
    for i in range(5):
        net.send(0, 3, 100 * (5 - i), "seq", on_delivered=got.append, payload=i)
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_local_send_does_not_touch_nic():
    sim, net = make_net()
    got = []
    net.send(2, 2, 10_000, "local", on_delivered=got.append, payload="p")
    sim.run()
    assert got == ["p"]
    assert sim.now == pytest.approx(net.params.alpha_recv)


def test_stats_account_messages_and_bytes():
    sim, net = make_net()
    net.send(0, 1, 500, "request")
    net.send(1, 0, 2000, "object")
    sim.run()
    assert net.stats.counters["net.messages"].value == 2
    assert net.stats.counters["net.messages.request"].value == 1
    assert net.stats.accumulators["net.bytes"].total == 2500
    assert net.stats.accumulators["net.bytes.object"].total == 2000


def test_message_records_capture_delivery_order():
    sim, net = make_net()
    net.send(0, 1, 10, "a")
    net.send(0, 2, 10, "b")
    sim.run()
    kinds = [m.kind for m in net.delivered]
    assert kinds == ["a", "b"]
    assert all(m.delivered_at >= m.sent_at for m in net.delivered)


def test_distance_affects_flight_time():
    sim, net = make_net()
    t_near = net.point_to_point_time(0, 1, 0)
    t_far = net.point_to_point_time(0, 31, 0)
    assert t_far > t_near
    assert t_far - t_near == pytest.approx(4 * net.params.per_hop)


def test_concurrent_sends_from_different_nodes_overlap():
    sim, net = make_net()
    net.send(0, 1, 100_000, "x")
    net.send(2, 3, 100_000, "x")
    sim.run()
    single = net.point_to_point_time(0, 1, 100_000)
    # Both finish in about the time of one send: different NICs.
    assert sim.now == pytest.approx(single, rel=0.05)
