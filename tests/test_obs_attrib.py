"""Tests for per-optimization attribution (``repro.obs.attrib``)."""

import pytest

from repro.apps import ALL_APPLICATIONS, MachineKind
from repro.lab.experiments import run_app
from repro.obs.attrib import render_attribution, verify_attribution
from repro.runtime import RuntimeOptions
from repro.runtime.metrics import RunMetrics
from repro.runtime.options import LocalityLevel

_MATRIX = [(app, machine)
           for app in sorted(ALL_APPLICATIONS)
           for machine in (MachineKind.IPSC860, MachineKind.DASH)]


@pytest.mark.parametrize("app,machine", _MATRIX)
def test_invariants_hold_across_app_machine_matrix(app, machine):
    metrics = run_app(app, 4, machine, scale="tiny")
    assert verify_attribution(metrics) == []


@pytest.mark.parametrize("options", [
    RuntimeOptions(adaptive_broadcast=False),
    RuntimeOptions(replication=False),
    RuntimeOptions(concurrent_fetches=False),
    RuntimeOptions(eager_update=True),
    RuntimeOptions(target_tasks_per_processor=2),
    RuntimeOptions(locality=LocalityLevel.NO_LOCALITY),
], ids=["no-broadcast", "no-replication", "serial-fetch", "eager-update",
        "latency-hiding", "no-locality"])
def test_invariants_hold_under_each_optimization_switch(options):
    metrics = run_app("water", 4, MachineKind.IPSC860,
                      options.locality, options, scale="tiny")
    assert verify_attribution(metrics) == []


def test_message_buckets_reconcile_exactly():
    metrics = run_app("water", 4, MachineKind.IPSC860, scale="tiny")
    assert (metrics.fetches_remote + metrics.broadcast_deliveries
            + metrics.eager_updates) == metrics.object_messages
    assert (metrics.fetch_bytes + metrics.broadcast_bytes
            + metrics.eager_update_bytes) == pytest.approx(
                metrics.object_bytes)


def test_broadcast_counters_move_with_the_switch():
    on = run_app("water", 4, MachineKind.IPSC860, scale="tiny")
    off = run_app("water", 4, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                  RuntimeOptions(adaptive_broadcast=False), scale="tiny")
    assert on.broadcast_deliveries > 0
    assert on.broadcast_bytes > 0
    assert off.broadcast_deliveries == 0
    assert off.broadcast_bytes == 0.0
    # With the broadcast off, those versions move point-to-point instead.
    assert off.fetches_remote > on.fetches_remote


def test_eager_update_counters_move_with_the_switch():
    eager = run_app("water", 4, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                    RuntimeOptions(eager_update=True), scale="tiny")
    assert eager.eager_updates > 0
    assert eager.eager_update_bytes > 0
    assert verify_attribution(eager) == []


def test_concurrent_fetch_overlap_is_zero_when_serialized():
    serial = run_app("water", 4, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                     RuntimeOptions(concurrent_fetches=False), scale="tiny")
    assert serial.concurrent_fetch_overlap == 0.0


def test_dash_runs_attribute_locality_only():
    metrics = run_app("water", 4, MachineKind.DASH, scale="tiny")
    # Shared memory: no fetch protocol, so every need is a locality hit.
    assert metrics.fetches_remote == 0
    assert metrics.replication_hits == 0
    assert metrics.locality_hits > 0
    assert verify_attribution(metrics) == []


def test_verify_reports_broken_reconciliation():
    metrics = run_app("water", 4, MachineKind.IPSC860, scale="tiny")
    metrics.fetches_remote += 1
    problems = verify_attribution(metrics)
    assert any("object_messages" in p for p in problems)


def test_verify_reports_negative_and_excess_overlap():
    metrics = RunMetrics()
    metrics.locality_hits = -1
    metrics.latency_hiding_overlap = 5.0   # task_latency_total is 0
    problems = verify_attribution(metrics)
    assert any("negative" in p for p in problems)
    assert any("latency_hiding_overlap" in p and "exceeds" in p
               for p in problems)


def test_summary_and_json_carry_new_fields():
    metrics = run_app("water", 4, MachineKind.IPSC860, scale="tiny")
    assert "broadcast_bytes" in metrics.summary()
    doc = metrics.to_json()
    assert "broadcast_bytes" in doc
    assert doc["attribution"] == metrics.attribution()


def test_render_attribution_is_stable_text():
    metrics = run_app("water", 4, MachineKind.IPSC860, scale="tiny")
    text = render_attribution(metrics)
    assert "per-optimization attribution" in text
    assert "adaptive broadcast" in text
    assert text == render_attribution(metrics)
