"""Tests for ``repro.faults``: specs, plans, determinism, injection."""

import pytest

from repro.apps import MachineKind
from repro.errors import ExperimentError
from repro.faults import FaultPlan, FaultSpec, NodeSlowdown, NodeStall
from repro.lab.experiments import run_app
from repro.obs.snapshot import dump_json


# --------------------------------------------------------------------- #
# spec validation
# --------------------------------------------------------------------- #
def test_spec_rejects_out_of_range_rates():
    with pytest.raises(ExperimentError, match="drop_rate"):
        FaultSpec(drop_rate=1.5)
    with pytest.raises(ExperimentError, match="duplicate_rate"):
        FaultSpec(duplicate_rate=-0.1)
    with pytest.raises(ExperimentError, match="delay_us"):
        FaultSpec(delay_rate=0.1, delay_us=-1.0)
    with pytest.raises(ExperimentError, match="degrade_multiplier"):
        FaultSpec(degrade_rate=0.1, degrade_multiplier=0.5)
    with pytest.raises(ExperimentError, match="slowdown"):
        FaultSpec(slowdowns=(NodeSlowdown(0, 2.0, 1.0, 0.5),))
    with pytest.raises(ExperimentError, match="stall"):
        FaultSpec(stalls=(NodeStall(0, 1.0, 1.0),))


def test_spec_predicates_and_describe():
    assert not FaultSpec(seed=3).perturbs_messages
    assert not FaultSpec(seed=3).any_faults
    assert FaultSpec(drop_rate=0.1).perturbs_messages
    assert not FaultSpec(slowdowns=(NodeSlowdown(0, 2.0, 0.0, 1.0),)) \
        .perturbs_messages
    assert FaultSpec(slowdowns=(NodeSlowdown(0, 2.0, 0.0, 1.0),)).any_faults
    described = FaultSpec(seed=7, drop_rate=0.05, duplicate_rate=0.02) \
        .describe()
    assert "seed=7" in described and "drop=0.05" in described
    dump_json(FaultSpec(seed=7, drop_rate=0.05).to_json())


# --------------------------------------------------------------------- #
# plan determinism
# --------------------------------------------------------------------- #
def test_two_plans_from_one_spec_make_identical_decisions():
    spec = FaultSpec(seed=11, drop_rate=0.3, duplicate_rate=0.2,
                     delay_rate=0.2, degrade_rate=0.1)
    a, b = FaultPlan(spec), FaultPlan(spec)
    for i in range(200):
        assert a.tx_decision(0.0, 0, 1, 64, "data") == \
            b.tx_decision(0.0, 0, 1, 64, "data")
        tag = ("deliver", 0, 1, "data")
        assert a.perturb_delivery(tag, float(i)) == \
            b.perturb_delivery(tag, float(i))
    assert a.counters == b.counters


def test_zero_rate_faults_consume_no_rng_draws():
    # Enabling one fault type must not shift another type's stream: a
    # drop-only plan and a drop+duplicate plan agree on every drop draw.
    drop_only = FaultPlan(FaultSpec(seed=5, drop_rate=0.3))
    with_dup = FaultPlan(FaultSpec(seed=5, drop_rate=0.3,
                                   duplicate_rate=0.5))
    tag = ("deliver", 1, 2, "data")
    drops_a = [drop_only.perturb_delivery(tag, float(i))[0]
               for i in range(100)]
    drops_b = [with_dup.perturb_delivery(tag, float(i))[0]
               for i in range(100)]
    assert drops_a == drops_b


def test_plan_ignores_unlabelled_events():
    plan = FaultPlan(FaultSpec(seed=1, drop_rate=1.0))
    assert plan.perturb_delivery(None, 0.0) == (False, 0.0)
    assert plan.perturb_delivery(("compute", 3), 0.0) == (False, 0.0)
    assert plan.counters["messages_dropped"] == 0


def test_compute_perturbation_windows():
    spec = FaultSpec(slowdowns=(NodeSlowdown(0, 3.0, 0.0, 1.0),),
                     stalls=(NodeStall(1, 0.0, 2.0),))
    plan = FaultPlan(spec)
    assert plan.perturb_compute(0, 0.5, 1.0) == pytest.approx(3.0)
    assert plan.perturb_compute(0, 5.0, 1.0) == pytest.approx(1.0)  # outside
    assert plan.perturb_compute(1, 0.5, 1.0) == pytest.approx(1.0 + 1.5)
    assert plan.perturb_compute(2, 0.5, 1.0) == pytest.approx(1.0)
    assert plan.counters["compute_slowdowns"] == 1
    assert plan.counters["compute_stalls"] == 1


# --------------------------------------------------------------------- #
# end-to-end injection
# --------------------------------------------------------------------- #
def test_all_zero_spec_run_is_byte_identical_to_no_spec():
    bare = run_app("water", 4, MachineKind.IPSC860, scale="tiny")
    zero = run_app("water", 4, MachineKind.IPSC860, scale="tiny",
                   faults=FaultSpec(seed=7))
    assert dump_json(zero.to_json()) == dump_json(bare.to_json())
    assert zero.messages_dropped == 0
    assert zero.retransmissions == 0


def test_same_seed_faulty_runs_are_identical():
    spec = FaultSpec(seed=7, drop_rate=0.05, duplicate_rate=0.02)
    first = run_app("water", 4, MachineKind.IPSC860, scale="tiny",
                    faults=spec)
    second = run_app("water", 4, MachineKind.IPSC860, scale="tiny",
                     faults=spec)
    assert dump_json(first.to_json()) == dump_json(second.to_json())
    assert first.messages_dropped > 0


def test_fault_counters_flow_into_metrics():
    spec = FaultSpec(seed=7, drop_rate=0.05, duplicate_rate=0.05)
    metrics = run_app("water", 4, MachineKind.IPSC860, scale="tiny",
                      faults=spec)
    assert metrics.messages_dropped > 0
    assert metrics.retransmissions > 0
    assert metrics.ack_bytes > 0
    attribution = metrics.attribution()
    for key in ("messages_dropped", "messages_duplicated", "retransmissions",
                "duplicates_suppressed", "ack_bytes", "recovery_stall_us"):
        assert key in attribution


def test_node_slowdown_stretches_elapsed():
    bare = run_app("water", 4, MachineKind.IPSC860, scale="tiny")
    slow = run_app(
        "water", 4, MachineKind.IPSC860, scale="tiny",
        faults=FaultSpec(slowdowns=(NodeSlowdown(0, 8.0, 0.0, 10.0),)))
    assert slow.elapsed > bare.elapsed
    # Node windows perturb compute pricing only — no message faults, so no
    # reliable-delivery layer and no recovery traffic.
    assert slow.retransmissions == 0
    assert slow.total_messages == bare.total_messages


def test_dash_rejects_fault_injection():
    with pytest.raises(ExperimentError, match="DASH"):
        run_app("water", 4, MachineKind.DASH, scale="tiny",
                faults=FaultSpec(seed=1, drop_rate=0.1))
