"""Tests for the shared-memory (DASH) Jade runtime."""

import numpy as np
import pytest

from repro.core import run_stripped
from repro.machines import DashMachine
from repro.machines.dash import DashParams
from repro.runtime import LocalityLevel, RuntimeOptions, run_shared_memory

from tests.helpers import (
    assert_matches_stripped,
    chain_program,
    fanout_program,
    independent_program,
    reduction_program,
)


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
def test_reduction_matches_stripped(nprocs):
    program = reduction_program(num_workers=8, iterations=3)
    metrics = run_shared_memory(program, nprocs)
    assert_matches_stripped(program, metrics)
    assert metrics.tasks_executed == 24
    assert metrics.serial_sections_executed == 3


@pytest.mark.parametrize(
    "level",
    [LocalityLevel.LOCALITY, LocalityLevel.NO_LOCALITY],
)
def test_all_locality_levels_produce_serial_results(level):
    program = reduction_program(num_workers=6, iterations=2)
    metrics = run_shared_memory(program, 4, RuntimeOptions(locality=level))
    assert_matches_stripped(program, metrics)


def test_chain_is_fully_serial():
    """A dependence chain cannot speed up: elapsed >= sum of costs."""
    program = chain_program(length=12, cost=1e-3)
    metrics = run_shared_memory(program, 8)
    assert_matches_stripped(program, metrics)
    assert metrics.elapsed >= 12 * 1e-3


def test_independent_tasks_speed_up():
    cost = 5e-3
    p1 = run_shared_memory(independent_program(16, cost), 1)
    p8 = run_shared_memory(independent_program(16, cost), 8)
    assert p8.elapsed < p1.elapsed / 3.0  # near-linear modulo creation


def test_fanout_readers_run_concurrently():
    # Small shared object: compute dominates, so the 8 readers' overlap
    # shows through (the paper's replication argument).
    program = fanout_program(num_readers=8, cost=5e-3, nbytes=2000)
    metrics = run_shared_memory(program, 8)
    assert_matches_stripped(program, metrics)
    serial_metrics = run_shared_memory(
        fanout_program(num_readers=8, cost=5e-3, nbytes=2000), 1
    )
    assert metrics.elapsed < serial_metrics.elapsed / 2.0


def test_locality_heuristic_runs_tasks_on_object_homes():
    """With per-worker homed contribution arrays and ample processors, the
    locality level keeps every task on its target (the paper's Water)."""
    program = reduction_program(num_workers=8, iterations=3, cost=5e-3)
    metrics = run_shared_memory(
        program, 8, RuntimeOptions(locality=LocalityLevel.LOCALITY)
    )
    assert metrics.task_locality_pct == pytest.approx(100.0)


def test_no_locality_scatters_tasks():
    program = reduction_program(num_workers=8, iterations=4, cost=5e-3)
    metrics = run_shared_memory(
        program, 8, RuntimeOptions(locality=LocalityLevel.NO_LOCALITY)
    )
    assert metrics.task_locality_pct < 100.0


def test_task_placement_pins_tasks():
    """Explicitly placed tasks execute exactly where the programmer said."""
    from repro.core import JadeBuilder

    jade = JadeBuilder()
    # Objects are allocated on the processors the tasks are placed on, as
    # the paper's programmer did for Ocean and Panel Cholesky.
    cells = [jade.object(f"c{i}", initial=np.zeros(2), home=1 + i % 3)
             for i in range(6)]
    for i in range(6):
        jade.task(f"t{i}", body=None, wr=[cells[i]], cost=1e-3, placement=1 + i % 3)
    program = jade.finish("placed")
    metrics = run_shared_memory(
        program, 4, RuntimeOptions(locality=LocalityLevel.TASK_PLACEMENT)
    )
    assert metrics.tasks_per_processor[0] == 0
    assert metrics.tasks_per_processor[1] == 2
    assert metrics.task_locality_pct == pytest.approx(100.0)


def test_task_time_includes_memory_system_cost():
    program = fanout_program(num_readers=4, cost=1e-3, nbytes=500_000)
    metrics = run_shared_memory(program, 4)
    assert metrics.task_comm_total > 0
    assert metrics.task_time_total == pytest.approx(
        metrics.task_compute_total + metrics.task_comm_total
    )


def test_work_free_run_is_faster_and_skips_bodies():
    program = reduction_program(num_workers=8, iterations=2, cost=5e-3)
    normal = run_shared_memory(program, 4)
    free = run_shared_memory(
        reduction_program(num_workers=8, iterations=2, cost=5e-3),
        4,
        RuntimeOptions(work_free=True),
    )
    assert free.elapsed < normal.elapsed
    assert free.task_time_total == 0.0


def test_task_creation_charges_main_processor():
    params = DashParams()
    params.task_create_seconds = 2e-3
    program = independent_program(10, cost=1e-3)
    machine = DashMachine(4, params)
    metrics = run_shared_memory(program, 4, machine=machine)
    assert metrics.mgmt_time_main == pytest.approx(10 * 2e-3)
    # Serialized creation bounds the elapsed time from below.
    assert metrics.elapsed >= 10 * 2e-3


def test_determinism():
    def run():
        program = reduction_program(num_workers=8, iterations=3)
        m = run_shared_memory(program, 8)
        return m.elapsed, m.tasks_on_target, m.task_time_total

    assert run() == run()


def test_empty_program():
    from repro.core import JadeBuilder

    program = JadeBuilder().finish("empty")
    metrics = run_shared_memory(program, 4)
    assert metrics.elapsed == 0.0
    assert metrics.tasks_executed == 0


def test_busy_accounting_covers_all_processors():
    program = independent_program(16, cost=2e-3)
    metrics = run_shared_memory(program, 4)
    assert len(metrics.busy_per_processor) == 4
    assert sum(metrics.busy_per_processor) >= 16 * 2e-3
