"""Unit tests for the derived run metrics."""

import pytest

from repro.runtime.metrics import RunMetrics


def test_locality_pct():
    m = RunMetrics(tasks_executed=10, tasks_on_target=7)
    assert m.task_locality_pct == pytest.approx(70.0)
    assert RunMetrics().task_locality_pct == 100.0  # vacuous


def test_comm_to_comp_ratio():
    m = RunMetrics(object_bytes=2 * 1024 * 1024, task_compute_total=4.0)
    assert m.comm_to_comp_ratio == pytest.approx(0.5)
    assert RunMetrics(object_bytes=100.0).comm_to_comp_ratio == 0.0


def test_latency_means_and_ratio():
    m = RunMetrics(
        object_latency_total=6.0, object_requests=3,
        task_latency_total=4.0, tasks_with_fetches=2,
    )
    assert m.mean_object_latency == pytest.approx(2.0)
    assert m.mean_task_latency == pytest.approx(2.0)
    assert m.object_to_task_latency_ratio == pytest.approx(1.5)
    assert RunMetrics().object_to_task_latency_ratio == 1.0


def test_summary_keys():
    m = RunMetrics(elapsed=1.0, tasks_executed=2)
    summary = m.summary()
    for key in ("elapsed", "tasks", "locality_pct", "task_time",
                "comm_ratio", "object_mb", "mgmt_main", "latency_ratio"):
        assert key in summary
    assert summary["elapsed"] == 1.0
    assert summary["tasks"] == 2.0


# --------------------------------------------------------------------- #
# zero-task / zero-compute edge cases
# --------------------------------------------------------------------- #
def test_zero_task_run_has_vacuous_locality():
    # An empty program executes zero tasks; locality must read 100%, not
    # divide by zero (the paper's figures have no zero-task points, but
    # tiny sweeps and the work-free methodology can produce them).
    m = RunMetrics(tasks_executed=0, tasks_on_target=0)
    assert m.task_locality_pct == 100.0


def test_zero_compute_run_has_zero_comm_ratio():
    # Bytes moved but no compute recorded (work-free runs): ratio is
    # defined as 0, not infinity.
    m = RunMetrics(object_bytes=5 * 1024 * 1024, task_compute_total=0.0)
    assert m.comm_to_comp_ratio == 0.0


def test_negative_compute_is_clamped_to_zero_ratio():
    m = RunMetrics(object_bytes=1024.0, task_compute_total=-1.0)
    assert m.comm_to_comp_ratio == 0.0


def test_zero_fetch_run_has_unit_latency_ratio():
    # No task ever waited on a fetch: the §5.5 ratio degenerates to 1
    # ("concurrent fetching bought nothing"), and the means are 0.
    m = RunMetrics(object_latency_total=0.0, object_requests=0,
                   task_latency_total=0.0, tasks_with_fetches=0)
    assert m.object_to_task_latency_ratio == 1.0
    assert m.mean_object_latency == 0.0
    assert m.mean_task_latency == 0.0


def test_object_latency_without_task_latency_is_unit_ratio():
    # Requests recorded but zero task-level wait (fully overlapped
    # fetches): the denominator guard keeps the ratio at 1.
    m = RunMetrics(object_latency_total=3.0, object_requests=2,
                   task_latency_total=0.0, tasks_with_fetches=0)
    assert m.object_to_task_latency_ratio == 1.0
    assert m.mean_object_latency == pytest.approx(1.5)


def test_zero_task_summary_is_finite():
    summary = RunMetrics().summary()
    for key, value in summary.items():
        assert value == value and abs(value) != float("inf"), key
