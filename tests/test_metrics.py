"""Unit tests for the derived run metrics."""

import pytest

from repro.runtime.metrics import RunMetrics


def test_locality_pct():
    m = RunMetrics(tasks_executed=10, tasks_on_target=7)
    assert m.task_locality_pct == pytest.approx(70.0)
    assert RunMetrics().task_locality_pct == 100.0  # vacuous


def test_comm_to_comp_ratio():
    m = RunMetrics(object_bytes=2 * 1024 * 1024, task_compute_total=4.0)
    assert m.comm_to_comp_ratio == pytest.approx(0.5)
    assert RunMetrics(object_bytes=100.0).comm_to_comp_ratio == 0.0


def test_latency_means_and_ratio():
    m = RunMetrics(
        object_latency_total=6.0, object_requests=3,
        task_latency_total=4.0, tasks_with_fetches=2,
    )
    assert m.mean_object_latency == pytest.approx(2.0)
    assert m.mean_task_latency == pytest.approx(2.0)
    assert m.object_to_task_latency_ratio == pytest.approx(1.5)
    assert RunMetrics().object_to_task_latency_ratio == 1.0


def test_summary_keys():
    m = RunMetrics(elapsed=1.0, tasks_executed=2)
    summary = m.summary()
    for key in ("elapsed", "tasks", "locality_pct", "task_time",
                "comm_ratio", "object_mb", "mgmt_main", "latency_ratio"):
        assert key in summary
    assert summary["elapsed"] == 1.0
    assert summary["tasks"] == 2.0
