"""Shared test helpers: small synthetic Jade programs with known answers."""

from __future__ import annotations

import numpy as np

from repro.core import AccessSpec, JadeBuilder, JadeProgram


def reduction_program(num_workers: int = 8, iterations: int = 2,
                      cost: float = 1e-3, hint_homes: bool = True) -> JadeProgram:
    """A Water-shaped program: parallel accumulate phases + serial reductions.

    Each iteration: every worker reads a shared ``state`` array and writes
    its own contribution array; a serial section reduces the contributions
    and rewrites ``state``.  The final state is analytically known.
    """
    jade = JadeBuilder()
    state = jade.object("state", initial=np.ones(16), sim_nbytes=4096)
    contribs = [
        jade.object(
            f"contrib{w}", initial=np.zeros(16), sim_nbytes=4096,
            home=(w if hint_homes else None),
        )
        for w in range(num_workers)
    ]

    def work(w):
        def body(ctx):
            out = ctx.wr(contribs[w])
            out[:] = ctx.rd(state) * (w + 1)
        return body

    def reduce_body(ctx):
        total = np.zeros(16)
        for c in contribs:
            total += ctx.rd(c)
        ctx.wr(state)[:] = total / (len(contribs) * (len(contribs) + 1) / 2.0)

    for it in range(iterations):
        for w in range(num_workers):
            # Declare the contribution array first: it is the locality
            # object, exactly as in the paper's Water application.
            jade.task(f"work.{it}.{w}", body=work(w),
                      spec=AccessSpec().wr(contribs[w]).rd(state),
                      cost=cost, phase=f"par{it}")
        jade.serial(f"reduce.{it}", body=reduce_body,
                    rd=contribs, wr=[state], cost=cost / 2, phase=f"ser{it}")
    return jade.finish("reduction")


def chain_program(length: int = 10, cost: float = 1e-4) -> JadeProgram:
    """A fully serial dependence chain through one object."""
    jade = JadeBuilder()
    acc = jade.object("acc", initial=np.zeros(1))

    def step(k):
        def body(ctx):
            ctx.wr(acc)[0] = ctx.rd(acc)[0] * 2 + k
        return body

    for k in range(length):
        jade.task(f"step{k}", body=step(k), rw=[acc], cost=cost)
    return jade.finish("chain")


def fanout_program(num_readers: int = 8, cost: float = 1e-3,
                   nbytes: int = 100_000) -> JadeProgram:
    """One producer, many concurrent readers of a large object."""
    jade = JadeBuilder()
    data = jade.object("data", initial=np.zeros(8), sim_nbytes=nbytes)
    sinks = [jade.object(f"sink{i}", initial=np.zeros(8), home=i)
             for i in range(num_readers)]

    def produce(ctx):
        ctx.wr(data)[:] = np.arange(8.0)

    def consume(i):
        def body(ctx):
            ctx.wr(sinks[i])[:] = ctx.rd(data) + i
        return body

    jade.serial("produce", body=produce, wr=[data], cost=cost)
    for i in range(num_readers):
        jade.task(f"read{i}", body=consume(i),
                  spec=AccessSpec().wr(sinks[i]).rd(data), cost=cost)
    return jade.finish("fanout")


def independent_program(num_tasks: int = 16, cost: float = 1e-3) -> JadeProgram:
    """Embarrassingly parallel: each task owns its object."""
    jade = JadeBuilder()
    cells = [jade.object(f"cell{i}", initial=np.zeros(4), home=i)
             for i in range(num_tasks)]

    def fill(i):
        def body(ctx):
            ctx.wr(cells[i])[:] = i
        return body

    for i in range(num_tasks):
        jade.task(f"fill{i}", body=fill(i), wr=[cells[i]], cost=cost)
    return jade.finish("independent")


def assert_matches_stripped(program: JadeProgram, metrics) -> None:
    """Every parallel run must reproduce the stripped serial results."""
    from repro.core import run_stripped

    serial = run_stripped(program)
    store = metrics.final_store
    assert store is not None
    for obj in program.registry:
        expected = serial.payload(obj)
        actual = store.get(obj.object_id)
        if isinstance(expected, np.ndarray):
            assert np.array_equal(expected, actual), f"object {obj.name} differs"
        else:
            assert expected == actual, f"object {obj.name} differs"
