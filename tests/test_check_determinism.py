"""Tests for the determinism verifier and structural trace comparison."""

import pytest

from repro.check import compare_traces, cross_check, verify_determinism
from repro.check.checker import traced_events, verify_application_determinism
from repro.sim.trace import TraceEvent

from tests.helpers import reduction_program


def _trace(n, start=0.0):
    return [TraceEvent(start + 0.1 * i, "task", f"t{i}", (("proc", i % 2),))
            for i in range(n)]


# --------------------------------------------------------------------- #
# compare_traces
# --------------------------------------------------------------------- #
def test_identical_traces_have_no_divergence():
    assert compare_traces(_trace(5), _trace(5)) is None


def test_perturbed_event_is_pinpointed():
    left = _trace(8)
    right = list(left)
    right[5] = TraceEvent(left[5].time, "task", "intruder", left[5].attrs)
    div = compare_traces(left, right, context=3)
    assert div is not None
    assert div.index == 5
    assert div.left == left[5]
    assert div.right.label == "intruder"
    # Context is the common events immediately before the divergence.
    assert list(div.context) == left[2:5]
    text = div.format()
    assert "divergence at event 5" in text
    assert "intruder" in text
    assert text.count("    = ") == 3  # three context lines


def test_perturbed_timestamp_is_a_divergence():
    left = _trace(4)
    right = list(left)
    right[2] = TraceEvent(left[2].time + 1e-9, left[2].category,
                          left[2].label, left[2].attrs)
    div = compare_traces(left, right)
    assert div is not None and div.index == 2


def test_prefix_trace_diverges_at_end():
    left = _trace(6)
    div = compare_traces(left, left[:4])
    assert div.index == 4
    assert div.left == left[4]
    assert div.right is None
    assert "<end of trace>" in div.format()


def test_context_clamped_at_trace_start():
    left = _trace(3)
    right = list(left)
    right[0] = TraceEvent(9.9, "task", "x", ())
    div = compare_traces(left, right, context=5)
    assert div.index == 0
    assert list(div.context) == []


# --------------------------------------------------------------------- #
# verify_determinism
# --------------------------------------------------------------------- #
def test_verify_determinism_passes_for_pure_factory():
    report = verify_determinism(lambda: _trace(10), runs=3, label="pure")
    assert report.ok
    assert report.runs == 3
    assert report.events == 10
    assert "OK" in report.format()


def test_verify_determinism_flags_nondeterministic_factory():
    calls = []

    def flaky():
        calls.append(None)
        trace = _trace(10)
        if len(calls) == 3:  # third run (replay 2) is perturbed
            trace[7] = TraceEvent(123.0, "task", "ghost", ())
        return trace

    report = verify_determinism(flaky, runs=4, label="flaky")
    assert not report.ok
    assert report.diverged_run == 2
    assert report.divergence.index == 7
    assert "FAILED" in report.format() and "ghost" in report.format()


def test_verify_determinism_needs_two_runs():
    with pytest.raises(ValueError):
        verify_determinism(lambda: [], runs=1)


# --------------------------------------------------------------------- #
# application-level replays and cross-machine checks
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("machine", ["dash", "ipsc860"])
def test_app_replay_is_deterministic(machine):
    report = verify_application_determinism("string", machine,
                                            num_processors=4, runs=2)
    assert report.ok
    assert report.events > 0


def test_traced_events_capture_machine_activity():
    events = traced_events("water", "ipsc860", 4, scale="tiny")
    assert events
    categories = {e.category for e in events}
    assert "message" in categories


def test_cross_check_reduction_program():
    report = cross_check(lambda: reduction_program(num_workers=4, iterations=2),
                         num_processors=4, label="reduction")
    assert report.ok
    # Both machines compared every object: state + 4 contributions, twice.
    assert report.objects_compared == 10
    assert "OK" in report.format()
