"""Canonical JSON and content keys (repro.util.canon).

One byte layout per value is the foundation the serve cache's soundness
argument rests on, so these tests pin the layout down: key ordering,
float spelling, the -0.0 collapse, rejection of non-finite floats and
non-JSON types, and hash stability.
"""

import json
import math

import pytest

from repro.util import canonical_json, content_key


def test_keys_sorted_at_every_level():
    text = canonical_json({"b": {"z": 1, "a": 2}, "a": [{"y": 1, "x": 2}]})
    assert text == '{"a":[{"x":2,"y":1}],"b":{"a":2,"z":1}}'


def test_compact_and_indented_differ_only_in_whitespace():
    doc = {"b": [1.5, {"k": True}], "a": None}
    compact = canonical_json(doc)
    pretty = canonical_json(doc, indent=2)
    strip = lambda s: "".join(s.split())  # noqa: E731
    assert compact != pretty
    assert strip(compact) == strip(pretty)
    assert json.loads(compact) == json.loads(pretty)


def test_floats_use_shortest_roundtrip_repr():
    assert canonical_json(0.1) == "0.1"
    assert canonical_json(1e300) == "1e+300"
    assert canonical_json(1.0) == "1.0"
    # ints stay ints: 1 and 1.0 are different byte strings.
    assert canonical_json(1) == "1"


def test_negative_zero_collapses_to_positive_zero():
    assert canonical_json(-0.0) == "0.0"
    assert canonical_json({"x": -0.0}) == canonical_json({"x": 0.0})
    assert content_key([-0.0]) == content_key([0.0])


@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
def test_non_finite_floats_rejected(bad):
    with pytest.raises(ValueError, match="non-finite"):
        canonical_json({"v": bad})


def test_non_string_keys_rejected():
    with pytest.raises(ValueError, match="string keys"):
        canonical_json({1: "x"})


def test_non_json_types_rejected_not_stringified():
    with pytest.raises(ValueError, match="cannot serialize"):
        canonical_json({"v": object()})
    with pytest.raises(ValueError, match="cannot serialize"):
        canonical_json({"v": {1, 2}})


def test_tuples_serialize_as_arrays():
    assert canonical_json((1, 2, 3)) == "[1,2,3]"
    assert content_key((1, 2)) == content_key([1, 2])


def test_error_paths_name_the_location():
    with pytest.raises(ValueError, match=r"\$\.outer\[1\]\.bad"):
        canonical_json({"outer": [{}, {"bad": math.inf}]})


def test_content_key_is_sha256_of_compact_form():
    import hashlib

    doc = {"a": 1, "b": [2.5, None]}
    expected = hashlib.sha256(
        canonical_json(doc).encode("utf-8")).hexdigest()
    assert content_key(doc) == expected
    assert len(content_key(doc)) == 64


def test_content_key_insensitive_to_dict_insertion_order():
    assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})


def test_content_key_sensitive_to_values_and_shape():
    base = content_key({"a": 1})
    assert content_key({"a": 2}) != base
    assert content_key({"a": 1.0}) != base  # 1 vs 1.0 spell differently
    assert content_key({"a": 1, "b": None}) != base
