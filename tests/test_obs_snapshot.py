"""Tests for snapshot serialization, schema validation, and JSON safety."""

import json
import math

import pytest

from repro.apps import MachineKind
from repro.lab.experiments import run_app
from repro.obs.schema import (
    BENCH_SCHEMA,
    assert_valid,
    validate_bench,
    validate_snapshot,
)
from repro.obs.snapshot import (
    BENCH_DIR_ENV,
    bench_snapshot,
    dump_json,
    write_bench_snapshot,
)
from repro.runtime.options import LocalityLevel
from repro.sim.stats import Accumulator


# --------------------------------------------------------------------- #
# JSON safety (the Accumulator Infinity hazard)
# --------------------------------------------------------------------- #
def test_empty_accumulator_as_dict_is_json_safe():
    doc = Accumulator("lat").as_dict()
    assert doc["min"] is None and doc["max"] is None
    assert doc["count"] == 0 and doc["mean"] == 0.0
    # Strict serialization must accept it (no Infinity literal).
    text = json.dumps(doc, allow_nan=False)
    assert "Infinity" not in text


def test_nonempty_accumulator_as_dict():
    acc = Accumulator("lat")
    acc.add(2.0)
    acc.add(4.0)
    assert acc.as_dict() == {
        "total": 6.0, "count": 2, "mean": 3.0, "min": 2.0, "max": 4.0,
    }


def test_dump_json_rejects_non_finite():
    with pytest.raises(ValueError):
        dump_json({"bad": math.inf})
    with pytest.raises(ValueError):
        dump_json({"bad": math.nan})


# --------------------------------------------------------------------- #
# RunMetrics.to_json
# --------------------------------------------------------------------- #
def test_run_metrics_to_json_round_trips():
    metrics = run_app("water", 2, MachineKind.IPSC860,
                      LocalityLevel.LOCALITY, scale="tiny")
    doc = metrics.to_json()
    text = dump_json(doc)  # strict: raises on any non-finite float
    back = json.loads(text)
    assert back["application"] == "water"
    assert back["num_processors"] == 2
    assert back["total_messages"] == metrics.total_messages
    assert back["busy_per_processor"] == pytest.approx(
        metrics.busy_per_processor)
    assert "final_store" not in back
    assert back["derived"]["task_locality_pct"] == pytest.approx(
        metrics.task_locality_pct)


def test_summary_includes_communication_totals():
    metrics = run_app("water", 2, MachineKind.IPSC860,
                      LocalityLevel.LOCALITY, scale="tiny")
    summary = metrics.summary()
    for key in ("total_messages", "total_bytes", "broadcasts",
                "eager_updates"):
        assert key in summary
    assert summary["total_messages"] == metrics.total_messages


# --------------------------------------------------------------------- #
# bench snapshots
# --------------------------------------------------------------------- #
def test_bench_snapshot_envelope_validates():
    doc = bench_snapshot("table07_water", {"1": 2704.0}, meta={"table": 7})
    assert doc["schema"] == BENCH_SCHEMA
    assert validate_bench(doc) == []
    assert validate_snapshot(doc) == []
    assert_valid(doc)


def test_bench_snapshot_detects_problems():
    assert validate_bench({"schema": "nope", "data": 1}) != []
    assert validate_bench({"schema": BENCH_SCHEMA, "name": "x"}) != []
    with pytest.raises(ValueError):
        assert_valid({"schema": BENCH_SCHEMA})


def test_write_bench_snapshot(tmp_path):
    path = write_bench_snapshot("roundtrip", {"series": [1, 2, 3]},
                                directory=str(tmp_path), meta={"k": "v"})
    assert path.endswith("BENCH_roundtrip.json")
    doc = json.loads(open(path).read())
    assert doc["name"] == "roundtrip"
    assert doc["data"]["series"] == [1, 2, 3]
    assert doc["meta"] == {"k": "v"}


def test_write_bench_snapshot_env_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(BENCH_DIR_ENV, str(tmp_path / "out"))
    path = write_bench_snapshot("envdir", 42)
    assert str(tmp_path / "out") in path
    assert json.loads(open(path).read())["data"] == 42


def test_write_bench_snapshot_rejects_paths(tmp_path):
    with pytest.raises(ValueError):
        write_bench_snapshot("../escape", 1, directory=str(tmp_path))
    with pytest.raises(ValueError):
        write_bench_snapshot("", 1, directory=str(tmp_path))
