"""Tests for the critical-path analyzer (``repro.obs.critical``)."""

import pytest

from repro.apps import MachineKind
from repro.lab.experiments import profile_app
from repro.obs.critical import (
    BUCKET_COMM,
    BUCKET_COMPUTE,
    BUCKET_MGMT,
    BUCKET_STALL,
    BUCKETS,
    extract_critical_path,
    render_critical_path,
)
from repro.sim.trace import Tracer


def _total(path):
    return sum(path.buckets().values())


# --------------------------------------------------------------------- #
# synthetic traces: the walk itself
# --------------------------------------------------------------------- #
def test_back_to_back_spans_partition_elapsed():
    tr = Tracer(enabled=True)
    tr.span(0.0, 1.0, "task", "exec", proc=1)
    tr.span(1.0, 1.5, "mgmt", "assign", proc=0)
    tr.span(1.5, 2.0, "message", "object", src=0, dst=1)
    path = extract_critical_path(tr, 2.0)
    buckets = path.buckets()
    assert buckets[BUCKET_COMPUTE] == pytest.approx(1.0)
    assert buckets[BUCKET_MGMT] == pytest.approx(0.5)
    assert buckets[BUCKET_COMM] == pytest.approx(0.5)
    assert buckets[BUCKET_STALL] == pytest.approx(0.0)
    assert _total(path) == pytest.approx(2.0)
    # Segments come back in chronological order and cover [0, elapsed].
    assert path.segments[0].start == pytest.approx(0.0)
    assert path.segments[-1].end == pytest.approx(2.0)


def test_gaps_become_stall():
    tr = Tracer(enabled=True)
    tr.span(0.0, 1.0, "task", "exec", proc=2)
    tr.span(3.0, 4.0, "task", "exec", proc=2)
    path = extract_critical_path(tr, 4.0)
    buckets = path.buckets()
    assert buckets[BUCKET_COMPUTE] == pytest.approx(2.0)
    assert buckets[BUCKET_STALL] == pytest.approx(2.0)
    stalls = [s for s in path.segments if s.bucket == BUCKET_STALL]
    assert [(s.start, s.end) for s in stalls] == [(1.0, 3.0)]
    # The stall is charged to the processor that was waiting.
    assert stalls[0].proc == 2


def test_leading_stall_when_nothing_recorded_early():
    tr = Tracer(enabled=True)
    tr.span(5.0, 6.0, "serial", "exec", proc=0)
    path = extract_critical_path(tr, 6.0)
    assert path.buckets()[BUCKET_STALL] == pytest.approx(5.0)
    assert _total(path) == pytest.approx(6.0)


def test_empty_trace_is_all_stall():
    path = extract_critical_path(Tracer(enabled=True), 3.0)
    assert path.buckets()[BUCKET_STALL] == pytest.approx(3.0)
    assert path.dominant_bucket == BUCKET_STALL


def test_zero_elapsed_yields_empty_path():
    path = extract_critical_path(Tracer(enabled=True), 0.0)
    assert path.segments == []
    assert _total(path) == 0.0


def test_walk_prefers_latest_ending_interval():
    tr = Tracer(enabled=True)
    tr.span(0.0, 10.0, "task", "exec", proc=1)     # bulk span
    tr.span(8.0, 10.0, "mgmt", "completion", proc=0)
    path = extract_critical_path(tr, 10.0)
    # Both end at 10; the tie prefers the later start (the tight causal
    # predecessor), so mgmt wins the tail and the task covers the rest.
    assert path.buckets()[BUCKET_MGMT] == pytest.approx(2.0)
    assert path.buckets()[BUCKET_COMPUTE] == pytest.approx(8.0)


def test_open_spans_are_skipped():
    tr = Tracer(enabled=True)
    tr.span_begin(0.0, "task", "exec", proc=0)      # never closed
    tr.span(0.0, 1.0, "mgmt", "create", proc=0)
    path = extract_critical_path(tr, 1.0)
    assert path.buckets()[BUCKET_MGMT] == pytest.approx(1.0)
    assert path.buckets()[BUCKET_COMPUTE] == pytest.approx(0.0)


def test_dash_exec_spans_split_compute_and_comm():
    tr = Tracer(enabled=True)
    tr.span(0.0, 4.0, "task", "exec", proc=1, compute=3.0, comm=1.0)
    path = extract_critical_path(tr, 4.0)
    buckets = path.buckets()
    assert buckets[BUCKET_COMPUTE] == pytest.approx(3.0)
    assert buckets[BUCKET_COMM] == pytest.approx(1.0)
    per_proc = path.per_processor()[1]
    assert per_proc[BUCKET_COMPUTE] == pytest.approx(3.0)
    assert per_proc[BUCKET_COMM] == pytest.approx(1.0)


def test_to_dict_shape_and_render():
    tr = Tracer(enabled=True)
    tr.span(0.0, 1.0, "mgmt", "create", proc=0)
    path = extract_critical_path(tr, 1.0)
    doc = path.to_dict()
    assert set(doc["buckets"]) == set(BUCKETS)
    assert doc["dominant_bucket"] == BUCKET_MGMT
    assert doc["main_processor_mgmt"] == pytest.approx(1.0)
    assert doc["per_processor"][0]["proc"] == 0
    text = render_critical_path(path)
    assert "task_management" in text and "<- dominant" in text


# --------------------------------------------------------------------- #
# real runs: the path reconciles with the run
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("machine", [MachineKind.IPSC860, MachineKind.DASH])
def test_path_partitions_elapsed_on_real_runs(machine):
    metrics, profile = profile_app("ocean", 4, machine, scale="tiny")
    path = profile.critical
    assert path is not None
    assert _total(path) == pytest.approx(metrics.elapsed, rel=1e-9)
    per_proc = path.per_processor()
    assert sum(sum(row.values()) for row in per_proc.values()) == \
        pytest.approx(metrics.elapsed, rel=1e-9)


def test_critical_path_is_deterministic():
    _m1, p1 = profile_app("water", 4, MachineKind.IPSC860, scale="tiny")
    _m2, p2 = profile_app("water", 4, MachineKind.IPSC860, scale="tiny")
    assert p1.critical.to_dict() == p2.critical.to_dict()


# --------------------------------------------------------------------- #
# the paper's bottleneck stories (Figures 10/11/20/21)
# --------------------------------------------------------------------- #
def _assert_main_mgmt_bound(metrics, path):
    assert path.dominant_bucket == "task_management"
    # The serialized bookkeeping sits on the main processor, as in the
    # paper's figures: proc 0's mgmt time is the single largest
    # (processor, bucket) cell on the path and a large elapsed fraction.
    main_mgmt = path.main_processor_mgmt()
    assert main_mgmt > 0.4 * metrics.elapsed
    largest = max(value
                  for row in path.per_processor().values()
                  for value in row.values())
    assert main_mgmt == pytest.approx(largest)


def test_ocean_paper_32p_is_main_processor_mgmt_bound():
    metrics, profile = profile_app("ocean", 32, MachineKind.IPSC860,
                                   scale="paper")
    _assert_main_mgmt_bound(metrics, profile.critical)


def test_cholesky_paper_32p_is_main_processor_mgmt_bound():
    metrics, profile = profile_app("cholesky", 32, MachineKind.IPSC860,
                                   scale="paper")
    _assert_main_mgmt_bound(metrics, profile.critical)


def test_water_paper_32p_is_compute_bound():
    _metrics, profile = profile_app("water", 32, MachineKind.IPSC860,
                                    scale="paper")
    assert profile.critical.dominant_bucket == "compute"
