"""Unit tests for program elaboration and the stripped executor."""

import numpy as np
import pytest

from repro.core import JadeBuilder, run_stripped
from repro.errors import AccessViolationError, SpecificationError


def test_builder_records_tasks_in_order():
    jade = JadeBuilder()
    a = jade.object("a", initial=np.zeros(3))
    t0 = jade.task("t0", wr=[a], cost=1.0)
    s0 = jade.serial("s0", rd=[a], cost=2.0)
    prog = jade.finish("demo")
    assert prog.tasks == [t0, s0]
    assert prog.parallel_tasks == [t0]
    assert prog.serial_sections == [s0]
    assert prog.total_cost() == pytest.approx(3.0)


def test_withonly_alias():
    jade = JadeBuilder()
    a = jade.object("a")
    t = jade.withonly("w", rd=[a])
    assert t in jade.finish().tasks


def test_spec_and_lists_are_mutually_exclusive():
    jade = JadeBuilder()
    a = jade.object("a")
    from repro.core import AccessSpec

    with pytest.raises(SpecificationError):
        jade.task("bad", spec=AccessSpec(rd=[a]), rd=[a])


def test_negative_cost_rejected():
    jade = JadeBuilder()
    with pytest.raises(ValueError):
        jade.task("bad", cost=-1.0)


def test_stripped_runs_bodies_in_order_and_versions_advance():
    jade = JadeBuilder()
    acc = jade.object("acc", initial=np.zeros(1))

    def add(k):
        def body(ctx):
            ctx.wr(acc)[0] += k
        return body

    for i in range(5):
        jade.task(f"add{i}", body=add(i), rw=[acc], cost=0.5)
    prog = jade.finish()
    result = run_stripped(prog)
    assert result.payload(acc)[0] == sum(range(5))
    assert result.time == pytest.approx(2.5)
    assert result.tasks_executed == 5
    assert result.store.version(acc.object_id) == 5


def test_stripped_detects_undeclared_access():
    jade = JadeBuilder()
    a = jade.object("a", initial=np.zeros(1))
    b = jade.object("b", initial=np.zeros(1))

    def bad(ctx):
        ctx.wr(b)  # not declared

    jade.task("bad", body=bad, rd=[a])
    with pytest.raises(AccessViolationError):
        run_stripped(jade.finish())


def test_context_set_replaces_payload():
    jade = JadeBuilder()
    scalar = jade.object("s", initial=1.0)

    def body(ctx):
        ctx.set(scalar, ctx.rd(scalar) + 10.0)

    jade.task("inc", body=body, rw=[scalar])
    result = run_stripped(jade.finish())
    assert result.payload(scalar) == 11.0


def test_validate_catches_foreign_objects():
    jade1 = JadeBuilder()
    jade2 = JadeBuilder()
    foreign = jade2.object("foreign")
    jade1.object("mine")
    jade1.task("t", rd=[foreign])
    with pytest.raises(SpecificationError):
        jade1.finish().validate()


def test_serial_sections_share_the_store_with_tasks():
    """A serial phase reads what parallel tasks produced — Water's shape."""
    jade = JadeBuilder()
    contrib = [jade.object(f"c{i}", initial=np.zeros(1)) for i in range(3)]
    total = jade.object("total", initial=np.zeros(1))

    def work(i):
        def body(ctx):
            ctx.wr(contrib[i])[0] = i + 1
        return body

    def reduce_body(ctx):
        ctx.wr(total)[0] = sum(ctx.rd(c)[0] for c in contrib)

    for i in range(3):
        jade.task(f"w{i}", body=work(i), wr=[contrib[i]])
    jade.serial("reduce", body=reduce_body, rd=contrib, wr=[total])
    result = run_stripped(jade.finish())
    assert result.payload(total)[0] == 6.0
