"""Tests for the program-analysis tools."""

import networkx as nx
import pytest

from repro.core import AccessSpec, JadeBuilder
from repro.lab.analysis import (
    average_parallelism,
    concurrency_profile,
    critical_path,
    dependence_edges,
    dependence_graph,
    max_speedup,
    summarize,
)

from tests.helpers import chain_program, fanout_program, independent_program


def diamond_program():
    """a -> (b, c) -> d with known costs."""
    jade = JadeBuilder()
    src = jade.object("src")
    left = jade.object("left")
    right = jade.object("right")
    jade.task("a", wr=[src], cost=1.0)
    jade.task("b", spec=AccessSpec().wr(left).rd(src), cost=2.0)
    jade.task("c", spec=AccessSpec().wr(right).rd(src), cost=3.0)
    jade.task("d", rd=[left, right], cost=1.0)
    return jade.finish("diamond")


def test_dependence_edges_diamond():
    program = diamond_program()
    assert dependence_edges(program) == [(0, 1), (0, 2), (1, 3), (2, 3)]


def test_war_dependence():
    """A writer after readers must depend on every reader."""
    jade = JadeBuilder()
    o = jade.object("o")
    jade.task("w0", wr=[o], cost=1.0)
    jade.task("r1", rd=[o], cost=1.0)
    jade.task("r2", rd=[o], cost=1.0)
    jade.task("w3", wr=[o], cost=1.0)
    edges = dependence_edges(jade.finish("war"))
    assert (1, 3) in edges and (2, 3) in edges  # write-after-read
    assert (0, 1) in edges and (0, 2) in edges  # read-after-write
    assert (0, 3) in edges                      # write-after-write


def test_graph_is_a_dag_and_respects_program_order():
    program = fanout_program(num_readers=5)
    graph = dependence_graph(program)
    assert nx.is_directed_acyclic_graph(graph)
    for a, b in graph.edges:
        assert a < b  # dependences always point forward in program order


def test_critical_path_diamond():
    path = critical_path(diamond_program())
    assert path.length_seconds == pytest.approx(1.0 + 3.0 + 1.0)
    assert path.task_ids == [0, 2, 3]


def test_chain_has_no_parallelism():
    program = chain_program(length=10, cost=1e-3)
    assert max_speedup(program) == pytest.approx(1.0)
    assert average_parallelism(program) == pytest.approx(1.0)


def test_independent_program_fully_parallel():
    program = independent_program(num_tasks=8, cost=1e-3)
    assert max_speedup(program) == pytest.approx(8.0)
    profile = concurrency_profile(program)
    assert max(w for _, w in profile) == 8


def test_concurrency_profile_diamond():
    profile = concurrency_profile(diamond_program())
    # t=0..1: a alone; t=1..3: b and c; t=3..4: c alone; t=4..5: d.
    widths = dict(profile)
    assert widths[0.0] == 1
    assert widths[1.0] == 2
    assert widths[3.0] == 1
    assert profile[-1][1] == 0


def test_zero_cost_tasks_do_not_break_profile():
    jade = JadeBuilder()
    o = jade.object("o")
    jade.task("free", wr=[o], cost=0.0)
    jade.task("work", rw=[o], cost=1.0)
    profile = concurrency_profile(jade.finish("z"))
    assert max(w for _, w in profile) == 1


def test_summarize_keys_and_cholesky_lack_of_concurrency():
    """§5.2.1: Panel Cholesky has limited inherent concurrency — far less
    than its task count would suggest."""
    from repro.apps import CholeskyConfig, MachineKind, PanelCholesky

    app = PanelCholesky(CholeskyConfig.tiny())
    program = app.build(8, machine=MachineKind.IPSC860)
    info = summarize(program)
    for key in ("tasks", "total_work_s", "critical_path_s",
                "critical_path_tasks", "max_speedup", "average_parallelism"):
        assert key in info
    assert 1.0 < info["max_speedup"] < info["tasks"]


def test_empty_program_analysis():
    program = JadeBuilder().finish("empty")
    assert dependence_edges(program) == []
    assert critical_path(program).length_seconds == 0.0
    assert average_parallelism(program) == 0.0
