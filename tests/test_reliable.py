"""Unit tests for the ARQ reliable-delivery layer over a faulty network."""

import pytest

from repro.apps import MachineKind
from repro.errors import ReliabilityError
from repro.faults import FaultPlan, FaultSpec
from repro.lab.experiments import profile_app, run_app
from repro.machines import Hypercube, Network
from repro.machines.network import NetworkParams
from repro.obs.attrib import verify_attribution
from repro.obs.schema import validate_profile
from repro.runtime.reliable import ReliableNetwork, ReliableParams
from repro.sim import Simulator


def make_reliable(size=8, spec=None, params=None):
    sim = Simulator()
    plan = FaultPlan(spec) if spec is not None else None
    net = Network(sim, Hypercube(size), NetworkParams(), faults=plan)
    if plan is not None:
        sim.perturb = plan.perturb_delivery
    return sim, net, ReliableNetwork(net, sim, params=params)


# --------------------------------------------------------------------- #
# clean channel
# --------------------------------------------------------------------- #
def test_clean_channel_delivers_once_and_acks():
    sim, _net, rel = make_reliable()
    got = []
    signal = rel.send(0, 1, 1000, "data", on_delivered=got.append,
                      payload="hello")
    sim.run()
    assert got == ["hello"]
    assert signal.fired
    assert rel.all_acked
    assert rel.counters["retransmissions"] == 0
    assert rel.counters["acks_sent"] == 1
    assert rel.counters["recovery_stall_us"] == 0.0


def test_headers_and_acks_are_priced_on_the_raw_network():
    sim, net, rel = make_reliable()
    rel.send(0, 1, 1000, "data")
    sim.run()
    p = rel.params
    # One data message (payload + header) plus one standalone ack.
    assert net.stats.counter("net.messages").value == 2
    assert net.stats.accumulator("net.bytes").total == \
        1000 + p.header_nbytes + p.ack_nbytes
    assert sim.now > net.point_to_point_time(0, 1, 1000)


def test_local_send_bypasses_the_protocol():
    sim, net, rel = make_reliable()
    got = []
    rel.send(3, 3, 1000, "data", on_delivered=got.append, payload="x")
    sim.run()
    assert got == ["x"]
    # Passed straight to the raw network: no header bytes, no ack message.
    assert net.stats.counter("net.messages").value == 1
    assert net.stats.accumulator("net.bytes").total == 1000
    assert rel.counters["acks_sent"] == 0
    assert not rel._send_channels


def test_acks_piggyback_on_reverse_traffic():
    sim, _net, rel = make_reliable()
    # 1 receives data from 0, then immediately has data for 0: the ack
    # should ride on the reverse data message, not a standalone ack.
    rel.send(0, 1, 500, "data",
             on_delivered=lambda _p: rel.send(1, 0, 500, "reply"))
    sim.run()
    assert rel.counters["piggybacked_acks"] >= 1
    assert rel.all_acked


# --------------------------------------------------------------------- #
# lossy channel
# --------------------------------------------------------------------- #
def test_dropped_message_retransmits_until_delivered():
    # Drops hit acks too, so the effective per-attempt confirm probability
    # is (1-rate)^2 — 0.3 keeps an 11-attempt budget safe while still
    # forcing plenty of retransmissions across 10 messages.
    sim, _net, rel = make_reliable(spec=FaultSpec(seed=3, drop_rate=0.3))
    delivered = []
    for i in range(10):
        rel.send(0, 1, 256, "data", on_delivered=delivered.append, payload=i)
    sim.run()
    assert sorted(delivered) == list(range(10))
    assert rel.all_acked
    assert rel.counters["retransmissions"] > 0
    assert rel.counters["recovery_stall_us"] > 0.0


def test_duplicated_copies_are_suppressed():
    sim, _net, rel = make_reliable(
        spec=FaultSpec(seed=5, duplicate_rate=1.0))
    delivered = []
    for i in range(5):
        rel.send(0, 1, 256, "data", on_delivered=delivered.append, payload=i)
    sim.run()
    # Every message was duplicated in the fabric, yet each delivers once.
    assert sorted(delivered) == list(range(5))
    assert rel.counters["duplicates_suppressed"] >= 5


def test_signal_fires_exactly_once_under_faults():
    sim, _net, rel = make_reliable(
        spec=FaultSpec(seed=9, drop_rate=0.4, duplicate_rate=0.4))
    fired = []
    for i in range(8):
        rel.send(0, 2, 128, "data").wait(lambda p, i=i: fired.append(i))
    sim.run()
    assert sorted(fired) == list(range(8))


def test_total_loss_exhausts_retry_budget():
    sim, _net, rel = make_reliable(
        spec=FaultSpec(seed=1, drop_rate=1.0),
        params=ReliableParams(max_retries=3))
    rel.send(0, 1, 256, "data")
    with pytest.raises(ReliabilityError, match="retry budget exhausted"):
        sim.run()


def test_broadcast_survives_drops():
    sim, _net, rel = make_reliable(size=8,
                                   spec=FaultSpec(seed=4, drop_rate=0.3))
    arrived = []
    rel.broadcast(0, 2048, "object",
                  on_delivered=lambda node, _p: arrived.append(node))
    sim.run()
    assert sorted(arrived) == list(range(1, 8))


# --------------------------------------------------------------------- #
# end-to-end accounting
# --------------------------------------------------------------------- #
def test_attribution_invariants_hold_under_faults():
    metrics = run_app("water", 4, MachineKind.IPSC860, scale="tiny",
                      faults=FaultSpec(seed=7, drop_rate=0.05,
                                       duplicate_rate=0.02))
    assert verify_attribution(metrics) == []
    assert metrics.duplicates_suppressed <= \
        metrics.retransmissions + metrics.messages_duplicated


def test_profile_under_faults_validates_and_has_recovery_bucket():
    metrics, profile = profile_app("water", 4, MachineKind.IPSC860,
                                   scale="tiny",
                                   faults=FaultSpec(seed=7, drop_rate=0.05))
    doc = profile.to_dict()
    assert validate_profile(doc) == []
    buckets = doc["critical_path"]["buckets"]
    assert "recovery" in buckets
    assert metrics.retransmissions > 0
    for key in ("messages_dropped", "retransmissions", "ack_bytes"):
        assert key in doc["metrics"]["attribution"]


def test_faulty_run_still_matches_fault_free_results():
    clean = run_app("string", 4, MachineKind.IPSC860, scale="tiny")
    faulty = run_app("string", 4, MachineKind.IPSC860, scale="tiny",
                     faults=FaultSpec(seed=13, drop_rate=0.05,
                                      duplicate_rate=0.02, delay_rate=0.05))
    ids = clean.final_store.object_ids()
    assert faulty.final_store.object_ids() == ids
    import numpy as np

    for oid in ids:
        assert np.array_equal(clean.final_store.get(oid),
                              faulty.final_store.get(oid)), oid
