"""Unit + property tests for the queue-based synchronizer.

The property test is the heart of the reproduction's correctness story:
for arbitrary programs, any completion order the synchronizer permits must
respect every conflicting-pair ordering of the serial program.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AccessSpec, ObjectRegistry, Synchronizer, TaskSpec
from repro.errors import SpecificationError


def make_task(tid, spec):
    return TaskSpec(tid, f"t{tid}", spec)


@pytest.fixture()
def objs():
    reg = ObjectRegistry()
    return [reg.create(f"o{i}") for i in range(5)]


# --------------------------------------------------------------------- #
# basic enablement semantics
# --------------------------------------------------------------------- #
def test_concurrent_readers_all_enabled(objs):
    sync = Synchronizer()
    tasks = [make_task(i, AccessSpec(rd=[objs[0]])) for i in range(4)]
    assert all(sync.add_task(t) for t in tasks)


def test_writer_blocks_later_reader(objs):
    sync = Synchronizer()
    writer = make_task(0, AccessSpec(wr=[objs[0]]))
    reader = make_task(1, AccessSpec(rd=[objs[0]]))
    assert sync.add_task(writer)
    assert not sync.add_task(reader)
    assert sync.complete_task(writer) == [1]
    assert sync.is_enabled(1)


def test_reader_blocks_later_writer(objs):
    sync = Synchronizer()
    reader = make_task(0, AccessSpec(rd=[objs[0]]))
    writer = make_task(1, AccessSpec(wr=[objs[0]]))
    assert sync.add_task(reader)
    assert not sync.add_task(writer)
    assert sync.complete_task(reader) == [1]


def test_two_writers_serialize_in_program_order(objs):
    sync = Synchronizer()
    w0 = make_task(0, AccessSpec(wr=[objs[0]]))
    w1 = make_task(1, AccessSpec(wr=[objs[0]]))
    assert sync.add_task(w0)
    assert not sync.add_task(w1)
    assert sync.complete_task(w0) == [1]


def test_reads_before_pending_write_enable_together(objs):
    sync = Synchronizer()
    w = make_task(0, AccessSpec(wr=[objs[0]]))
    r1 = make_task(1, AccessSpec(rd=[objs[0]]))
    r2 = make_task(2, AccessSpec(rd=[objs[0]]))
    w2 = make_task(3, AccessSpec(wr=[objs[0]]))
    sync.add_task(w)
    sync.add_task(r1)
    sync.add_task(r2)
    sync.add_task(w2)
    assert sync.complete_task(w) == [1, 2]
    assert not sync.is_enabled(3)
    sync.complete_task(r1)
    assert sync.complete_task(r2) == [3]


def test_independent_objects_do_not_interact(objs):
    sync = Synchronizer()
    a = make_task(0, AccessSpec(wr=[objs[0]]))
    b = make_task(1, AccessSpec(wr=[objs[1]]))
    assert sync.add_task(a)
    assert sync.add_task(b)


def test_task_with_two_blocked_entries_needs_both(objs):
    sync = Synchronizer()
    wa = make_task(0, AccessSpec(wr=[objs[0]]))
    wb = make_task(1, AccessSpec(wr=[objs[1]]))
    both = make_task(2, AccessSpec(rd=[objs[0], objs[1]]))
    sync.add_task(wa)
    sync.add_task(wb)
    assert not sync.add_task(both)
    assert sync.complete_task(wa) == []  # still waiting on objs[1]
    assert sync.complete_task(wb) == [2]


def test_both_entries_freed_by_one_completion(objs):
    """Regression: one completion may ready two entries of the same task."""
    sync = Synchronizer()
    w = make_task(0, AccessSpec(wr=[objs[0], objs[1]]))
    r = make_task(1, AccessSpec(rd=[objs[0], objs[1]]))
    sync.add_task(w)
    assert not sync.add_task(r)
    assert sync.complete_task(w) == [1]


def test_rw_behaves_as_write_for_ordering(objs):
    sync = Synchronizer()
    r = make_task(0, AccessSpec(rd=[objs[0]]))
    rw = make_task(1, AccessSpec(rw=[objs[0]]))
    r2 = make_task(2, AccessSpec(rd=[objs[0]]))
    sync.add_task(r)
    assert not sync.add_task(rw)
    assert not sync.add_task(r2)
    sync.complete_task(r)
    assert sync.is_enabled(1)
    assert not sync.is_enabled(2)


# --------------------------------------------------------------------- #
# versions
# --------------------------------------------------------------------- #
def test_version_assignment(objs):
    sync = Synchronizer()
    o = objs[0]
    w0 = make_task(0, AccessSpec(wr=[o]))
    r0 = make_task(1, AccessSpec(rd=[o]))
    w1 = make_task(2, AccessSpec(rw=[o]))
    r1 = make_task(3, AccessSpec(rd=[o]))
    for t in (w0, r0, w1, r1):
        sync.add_task(t)
    assert sync.produced_version(0, o.object_id) == 1
    assert sync.required_version(1, o.object_id) == 1
    assert sync.required_version(2, o.object_id) == 1
    assert sync.produced_version(2, o.object_id) == 2
    assert sync.required_version(3, o.object_id) == 2
    assert sync.latest_version(o.object_id) == 2


def test_version_queries_require_matching_declaration(objs):
    sync = Synchronizer()
    t = make_task(0, AccessSpec(rd=[objs[0]]))
    sync.add_task(t)
    with pytest.raises(SpecificationError):
        sync.produced_version(0, objs[0].object_id)
    with pytest.raises(SpecificationError):
        sync.required_version(0, objs[1].object_id)


# --------------------------------------------------------------------- #
# misuse detection
# --------------------------------------------------------------------- #
def test_double_add_rejected(objs):
    sync = Synchronizer()
    t = make_task(0, AccessSpec(rd=[objs[0]]))
    sync.add_task(t)
    with pytest.raises(SpecificationError):
        sync.add_task(t)


def test_double_complete_rejected(objs):
    sync = Synchronizer()
    t = make_task(0, AccessSpec(rd=[objs[0]]))
    sync.add_task(t)
    sync.complete_task(t)
    with pytest.raises(SpecificationError):
        sync.complete_task(t)


def test_complete_unknown_rejected(objs):
    sync = Synchronizer()
    with pytest.raises(SpecificationError):
        sync.complete_task(make_task(9, AccessSpec(rd=[objs[0]])))


# --------------------------------------------------------------------- #
# property: any permitted schedule preserves conflicting-pair order
# --------------------------------------------------------------------- #
@st.composite
def random_program(draw):
    n_objects = draw(st.integers(min_value=1, max_value=4))
    n_tasks = draw(st.integers(min_value=1, max_value=12))
    reg = ObjectRegistry()
    objects = [reg.create(f"o{i}") for i in range(n_objects)]
    tasks = []
    for tid in range(n_tasks):
        n_decls = draw(st.integers(min_value=1, max_value=min(3, n_objects)))
        chosen = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_objects - 1),
                min_size=n_decls,
                max_size=n_decls,
                unique=True,
            )
        )
        spec = AccessSpec()
        for oid in chosen:
            mode = draw(st.sampled_from(["rd", "wr", "rw"]))
            getattr(spec, mode)(objects[oid])
        tasks.append(make_task(tid, spec))
    return tasks


@settings(max_examples=150, deadline=None)
@given(random_program(), st.randoms(use_true_random=False))
def test_greedy_schedules_respect_dependences(tasks, rng):
    """Drive the synchronizer with random eligible-task choices and check
    that every conflicting pair completes in program order."""
    sync = Synchronizer()
    enabled = set()
    for t in tasks:
        if sync.add_task(t):
            enabled.add(t.task_id)
    by_id = {t.task_id: t for t in tasks}
    completion_order = []
    while enabled:
        tid = rng.choice(sorted(enabled))
        enabled.discard(tid)
        completion_order.append(tid)
        for new in sync.complete_task(by_id[tid]):
            enabled.add(new)
    # Everything ran.
    assert sorted(completion_order) == [t.task_id for t in tasks]
    # Conflicting pairs preserve program order.
    position = {tid: i for i, tid in enumerate(completion_order)}
    for a, b in itertools.combinations(tasks, 2):
        if a.spec.conflicts_with(b.spec):
            assert position[a.task_id] < position[b.task_id], (
                f"conflicting pair ({a.task_id}, {b.task_id}) completed out of order"
            )
