"""Tests for distributed resumable sweeps: checkpoint journal, remote
workers, streaming merge, and the byte-identity contract across all of
them.

The worker server runs in-process (port 0) — real HTTP over loopback,
no subprocess management.  The kill/resume test forks a child that
hard-exits mid-sweep, exactly like a host losing power between units.
"""

import multiprocessing
import os
import time

import pytest

from repro.apps import MachineKind
from repro.errors import ExperimentError
from repro.fleet import executor
from repro.fleet import (
    CheckpointJournal,
    PayloadMetrics,
    RemoteBackend,
    SweepUnit,
    create_backend,
    run_units_resilient,
    sweep_snapshot_doc,
    sweep_units,
    write_sweep_snapshot_stream,
)
from repro.fleet.checkpoint import iter_sweep_snapshot_chunks
from repro.fleet.worker import WorkerClient, WorkerError, WorkerServer
from repro.lab.experiments import ExperimentRow, locality_sweep
from repro.obs.snapshot import dump_json
from repro.telemetry.metrics import MetricsRegistry
from repro.__main__ import main

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: A port from the discard-service range: connection refused, fast.
_DEAD_URL = "http://127.0.0.1:9"


@pytest.fixture(scope="module")
def worker():
    server = WorkerServer(port=0)
    server.start_background()
    yield server
    server.stop()


def _serial_text(app="water", procs=(1, 2), scale="tiny"):
    rows = locality_sweep(app, MachineKind.IPSC860, list(procs), scale)
    return dump_json(sweep_snapshot_doc(app, "ipsc860", scale, rows)) + "\n"


def _rows_for(units, outcome):
    return [ExperimentRow("water", u.machine, u.level, u.procs, m)
            for u, m in zip(units, outcome.metrics) if m is not None]


def _text_for(units, outcome, scale="tiny"):
    return dump_json(sweep_snapshot_doc(
        "water", "ipsc860", scale, _rows_for(units, outcome))) + "\n"


# --------------------------------------------------------------------- #
# checkpoint journal
# --------------------------------------------------------------------- #
def test_journal_rejects_a_different_sweep(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "j"))
    units_a = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    units_b = sweep_units("water", MachineKind.IPSC860, [1, 4], "tiny")
    journal.open_sweep(units_a)
    journal.open_sweep(units_a)  # same sweep: idempotent
    with pytest.raises(ExperimentError, match="different sweep"):
        journal.open_sweep(units_b)


def test_journal_load_validates_unit_key(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "j"))
    units = sweep_units("water", MachineKind.IPSC860, [1], "tiny")
    journal.open_sweep(units)
    journal.record(0, units[0], {"elapsed": 1.5})
    assert journal.load(0, units[0]) == {"elapsed": 1.5}
    other = SweepUnit("water", "ipsc860", "locality", 64, "tiny")
    with pytest.raises(ExperimentError, match="different unit"):
        journal.load(0, other)


def test_checkpointed_sweep_is_byte_identical_to_serial(tmp_path):
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    outcome = run_units_resilient(units, jobs=1,
                                  checkpoint=str(tmp_path / "j"))
    assert outcome.ok
    assert _text_for(units, outcome) == _serial_text()


def test_completed_journal_resumes_without_dispatching(tmp_path):
    ckpt = str(tmp_path / "j")
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    run_units_resilient(units, jobs=1, checkpoint=ckpt)
    registry = MetricsRegistry()
    outcome = run_units_resilient(units, jobs=1, checkpoint=ckpt,
                                  registry=registry)
    assert outcome.ok
    assert registry.counter(
        "repro_fleet_units_resumed_total", "").value() == len(units)
    assert registry.counter(
        "repro_fleet_units_dispatched_total", "").value() == 0
    assert _text_for(units, outcome) == _serial_text()


def test_streaming_snapshot_matches_in_memory_builder(tmp_path):
    ckpt = str(tmp_path / "j")
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    run_units_resilient(units, jobs=1, checkpoint=ckpt)
    path = str(tmp_path / "stream.json")
    write_sweep_snapshot_stream(path, "water", "ipsc860", "tiny", units,
                                CheckpointJournal(ckpt))
    with open(path, "r", encoding="utf-8") as fh:
        assert fh.read() == _serial_text()


def test_streaming_snapshot_empty_rows(tmp_path):
    journal = CheckpointJournal(str(tmp_path / "j"))
    text = "".join(iter_sweep_snapshot_chunks("water", "ipsc860", "tiny",
                                              [], journal))
    assert text == dump_json(sweep_snapshot_doc("water", "ipsc860",
                                                "tiny", []))


@pytest.mark.skipif(not _HAS_FORK, reason="kill/resume test relies on fork")
def test_killed_sweep_resumes_from_journal_byte_identical(tmp_path):
    """The acceptance scenario: hard-kill a sweep after two units, resume
    from the journal, and get exactly the uninterrupted serial bytes —
    without re-running the journaled units."""
    ckpt = str(tmp_path / "j")
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    assert len(units) == 4

    def child():
        from repro.fleet import executor

        real = executor._run_unit
        state = {"n": 0}

        def run_two_then_die(indexed):
            if state["n"] >= 2:
                os._exit(9)  # power loss between units
            state["n"] += 1
            return real(indexed)

        executor._run_unit = run_two_then_die
        run_units_resilient(units, jobs=1, checkpoint=ckpt)

    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=child)
    proc.start()
    proc.join(timeout=300)
    assert proc.exitcode == 9
    # Exactly the completed units were journaled, atomically.
    assert CheckpointJournal(ckpt).completed_indices() == {0, 1}

    registry = MetricsRegistry()
    outcome = run_units_resilient(units, jobs=1, checkpoint=ckpt,
                                  registry=registry)
    assert outcome.ok
    assert registry.counter(
        "repro_fleet_units_resumed_total", "").value() == 2
    assert registry.counter(
        "repro_fleet_units_dispatched_total", "").value() == 2
    assert _text_for(units, outcome) == _serial_text()
    # The streaming merge over the (now complete) journal agrees too.
    path = str(tmp_path / "resumed.json")
    write_sweep_snapshot_stream(path, "water", "ipsc860", "tiny", units,
                                CheckpointJournal(ckpt))
    with open(path, "r", encoding="utf-8") as fh:
        assert fh.read() == _serial_text()


# --------------------------------------------------------------------- #
# worker server + remote backend
# --------------------------------------------------------------------- #
def test_worker_health_and_unit_execution(worker):
    client = WorkerClient(worker.url)
    health = client.health()
    assert health["status"] == "ok" and health["kind"] == "worker"
    unit = SweepUnit("water", "ipsc860", "locality", 2, "tiny")
    doc = client.run_unit("sweep-x", 1, 0, unit)
    assert doc["index"] == 0 and doc["error"] is None
    assert doc["metrics"]["elapsed"] > 0


def test_worker_dedups_redispatched_units(worker):
    client = WorkerClient(worker.url)
    unit = SweepUnit("water", "ipsc860", "locality", 1, "tiny")
    before = client.health()
    first = client.run_unit("sweep-dup", 1, 7, unit)
    second = client.run_unit("sweep-dup", 2, 7, unit)  # retransmission
    after = client.health()
    assert first["metrics"] == second["metrics"]
    assert after["units_executed"] == before["units_executed"] + 1
    assert after["duplicates_joined"] == before["duplicates_joined"] + 1


def test_worker_ships_simulation_errors_as_data(worker):
    client = WorkerClient(worker.url)
    bad = SweepUnit("no-such-app", "ipsc860", "locality", 2, "tiny")
    doc = client.run_unit("sweep-err", 1, 0, bad)
    assert doc["metrics"] is None
    assert "no-such-app" in doc["error"]


def test_worker_rejects_malformed_unit_request(worker):
    client = WorkerClient(worker.url)
    with pytest.raises(WorkerError, match="malformed unit request"):
        client._request("POST", "/v1/units", {"sweep": "s"})


def test_remote_sweep_is_byte_identical_to_serial(worker):
    registry = MetricsRegistry()
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    outcome = run_units_resilient(units, jobs=1,
                                  backend=RemoteBackend([worker.url]),
                                  registry=registry)
    assert outcome.ok
    assert _text_for(units, outcome) == _serial_text()
    assert registry.counter(
        "repro_fleet_backend_dispatch_total", "",
        labels=("backend",)).value(backend="remote") == len(units)


def test_remote_error_unit_strict_aborts_partial_keeps_rest(worker):
    good = SweepUnit("water", "ipsc860", "locality", 1, "tiny")
    bad = SweepUnit("no-such-app", "ipsc860", "locality", 2, "tiny")
    with pytest.raises(ExperimentError, match="no-such-app"):
        run_units_resilient([good, bad], jobs=1,
                            backend=RemoteBackend([worker.url]))
    outcome = run_units_resilient([good, bad], jobs=1, partial=True,
                                  backend=RemoteBackend([worker.url]))
    assert not outcome.ok and outcome.completed == 1
    assert outcome.failures[0].reason == "error"


def test_remote_requeues_from_dead_worker_to_live_one(worker):
    registry = MetricsRegistry()
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    backend = RemoteBackend([_DEAD_URL, worker.url])
    outcome = run_units_resilient(units, jobs=1, backend=backend,
                                  retries=1, registry=registry)
    assert outcome.ok
    assert _text_for(units, outcome) == _serial_text()
    requeued = registry.counter(
        "repro_fleet_backend_requeue_total", "",
        labels=("backend",)).value(backend="remote")
    stolen = registry.counter(
        "repro_fleet_backend_steal_total", "",
        labels=("backend",)).value(backend="remote")
    assert requeued >= 1  # the dead worker lost at least one dispatch
    assert stolen >= 1    # ...and the live one picked it up


def test_dead_worker_cannot_burn_unit_attempt_budget(worker, monkeypatch):
    # Regression: with one dead and one live worker, the dead pump fails
    # instantly (connection refused) while the live one is mid-request.
    # It must hand a unit it just failed over to the live worker, not
    # retry it itself until the unit's attempt budget is exhausted.  The
    # in-process worker shares this interpreter, so slowing _run_unit
    # here slows the live worker and makes the race deterministic.
    real = executor._run_unit

    def slow(pair):
        time.sleep(0.3)
        return real(pair)

    monkeypatch.setattr(executor, "_run_unit", slow)
    # Two units: the live worker holds one for 0.3s, which leaves the
    # dead pump alone with the other.  retries=0 → a budget of
    # len(workers) == 2 attempts per unit, so two back-to-back failures
    # on the dead worker abort the sweep — unless it hands over.
    units = sweep_units("water", MachineKind.IPSC860, [1], "tiny")
    outcome = run_units_resilient(units, jobs=1, retries=0,
                                  backend=RemoteBackend(
                                      [_DEAD_URL, worker.url]))
    assert outcome.ok
    assert _text_for(units, outcome) == _serial_text(procs=(1,))


def test_remote_all_workers_dead_partial_reports_remote_failures():
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    outcome = run_units_resilient(units, jobs=1, retries=0, partial=True,
                                  backend=RemoteBackend([_DEAD_URL]))
    assert not outcome.ok and outcome.completed == 0
    assert len(outcome.failures) == len(units)
    assert all(f.reason == "remote" for f in outcome.failures)


def test_remote_all_workers_dead_strict_raises():
    units = sweep_units("water", MachineKind.IPSC860, [1], "tiny")
    with pytest.raises(ExperimentError, match="remote"):
        run_units_resilient(units, jobs=1, retries=0,
                            backend=RemoteBackend([_DEAD_URL]))


def test_remote_rejects_explicit_options():
    from repro.runtime import RuntimeOptions

    unit = SweepUnit("water", "ipsc860", "locality", 1, "tiny",
                     RuntimeOptions())
    with pytest.raises(ExperimentError, match="RuntimeOptions"):
        run_units_resilient([unit], jobs=1,
                            backend=RemoteBackend([_DEAD_URL]))


def test_remote_backend_requires_workers():
    with pytest.raises(ExperimentError, match="worker URL"):
        RemoteBackend([])
    with pytest.raises(ExperimentError, match="unknown fleet backend"):
        create_backend("carrier-pigeon")
    backend = create_backend("remote", workers=[_DEAD_URL])
    assert backend.name == "remote"


def test_payload_metrics_answers_table_fields():
    payload = {"elapsed": 2.5, "derived": {"task_locality_pct": 87.5}}
    metrics = PayloadMetrics(payload)
    assert metrics.elapsed == 2.5
    assert metrics.task_locality_pct == 87.5
    assert metrics.to_json() is payload
    with pytest.raises(AttributeError):
        metrics.no_such_field


# --------------------------------------------------------------------- #
# worker as a serve transport
# --------------------------------------------------------------------- #
def test_worker_transport_matches_local_submit_bytes(worker):
    from repro.serve import RunRequest, api
    from repro.serve.transport import create_transport

    request = RunRequest(app="water", machine="ipsc860", scale="tiny",
                         procs=2)
    transport = create_transport("worker", base_url=worker.url)
    job = transport.submit(request)
    assert job["state"] == "done" and job["cache"] == "miss"
    assert transport.result_text(job["id"]) == api.submit(request).text
    assert transport.health()["kind"] == "worker"


def test_worker_transport_maps_bad_requests_to_failed_jobs(worker):
    from repro.serve.transport import create_transport

    transport = create_transport("worker", base_url=worker.url)

    class FakeRequest:
        kind = "run"

        def cache_key(self):
            return "bogus"

        def to_json(self):
            return {"kind": "no-such-kind"}

    job = transport.submit(FakeRequest())
    assert job["state"] == "failed"
    assert job["error"]["exit_code"] == 2
    with pytest.raises(ExperimentError, match="did not produce"):
        transport.result_text(job["id"])


# --------------------------------------------------------------------- #
# CLI integration
# --------------------------------------------------------------------- #
def test_cli_sweep_remote_checkpoint_byte_identical(worker, tmp_path,
                                                    capsys):
    """The acceptance criterion end-to-end: ``repro sweep --backend
    remote --checkpoint DIR`` against a live worker produces the same
    bytes as the plain serial CLI path."""
    remote_path = tmp_path / "remote.json"
    serial_path = tmp_path / "serial.json"
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "2", "--jobs", "1",
                 "--backend", "remote", "--workers", worker.url,
                 "--checkpoint", str(tmp_path / "ckpt"),
                 "--json", str(remote_path)]) == 0
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "2", "--jobs", "1",
                 "--json", str(serial_path)]) == 0
    capsys.readouterr()
    assert remote_path.read_bytes() == serial_path.read_bytes()


def test_cli_sweep_checkpoint_only_byte_identical(tmp_path, capsys):
    ckpt_path = tmp_path / "ckpt.json"
    serial_path = tmp_path / "serial.json"
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--jobs", "1",
                 "--checkpoint", str(tmp_path / "ckpt"),
                 "--json", str(ckpt_path)]) == 0
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--jobs", "1",
                 "--json", str(serial_path)]) == 0
    capsys.readouterr()
    assert ckpt_path.read_bytes() == serial_path.read_bytes()


def test_cli_sweep_remote_requires_workers(capsys):
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--backend", "remote"]) == 2
    assert "--workers" in capsys.readouterr().err


def test_cli_sweep_workers_require_remote_backend(capsys):
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--workers", "http://x:1"]) == 2
    assert "--backend remote" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# fleet observability: metrics endpoint, trace correlation, status CLI
# --------------------------------------------------------------------- #
def test_worker_metrics_endpoint_prometheus_and_json(worker):
    from repro.telemetry.metrics import parse_prometheus_text, sample_value
    from repro.obs.schema import validate_telemetry

    client = WorkerClient(worker.url)
    unit = SweepUnit("water", "ipsc860", "locality", 1, "tiny")
    client.run_unit("sweep-metrics", 1, 0, unit)
    text = client.metrics_text()
    families = parse_prometheus_text(text)
    assert sample_value(families, "repro_worker_units_executed_total") >= 1
    snapshot = client.metrics_json()
    assert snapshot["schema"] == "repro.telemetry/1"
    assert validate_telemetry(snapshot) == []
    names = {f["name"] for f in snapshot["metrics"]}
    assert {"repro_worker_units_executed_total",
            "repro_worker_duplicates_joined_total",
            "repro_worker_unit_seconds"} <= names


def test_worker_response_carries_exec_and_telemetry_sections(worker):
    client = WorkerClient(worker.url)
    unit = SweepUnit("water", "ipsc860", "locality", 1, "tiny")
    doc = client.run_unit("sweep-anchors", 1, 0, unit, attempt=2)
    assert doc["exec"]["t0"] <= doc["exec"]["t1"]
    assert doc["exec"]["seconds"] == pytest.approx(
        doc["exec"]["t1"] - doc["exec"]["t0"])
    assert doc["telemetry"]["t_recv"] <= doc["telemetry"]["t_reply"]
    # A join returns the owner's exec window but fresh clock anchors.
    joined = client.run_unit("sweep-anchors", 2, 0, unit, attempt=3)
    assert joined["exec"] == doc["exec"]
    assert joined["telemetry"]["t_recv"] >= doc["telemetry"]["t_reply"]


def test_worker_logs_carry_correlation_fields(worker, caplog):
    import logging

    client = WorkerClient(worker.url)
    unit = SweepUnit("water", "ipsc860", "locality", 1, "tiny")
    with caplog.at_level(logging.INFO, logger="repro.fleet.worker"):
        client.run_unit("sweep-log", 1, 5, unit, attempt=1)
        time.sleep(0.2)  # the access line lands after the response
    mine = [(r.getMessage(), r.fields) for r in caplog.records
            if r.fields.get("sweep") == "sweep-log"]
    events = dict(mine)
    assert events["unit_executed"]["index"] == 5
    assert events["unit_executed"]["attempt"] == 1
    access = events["http_request"]
    assert access["index"] == 5
    assert access["attempt"] == 1 and access["status"] == 200


def test_scrape_fleet_reports_live_and_dead_workers(worker):
    backend = RemoteBackend([worker.url, _DEAD_URL])
    fleet = backend.scrape_fleet(timeout=5.0)
    by_url = {e["url"]: e for e in fleet["workers"]}
    assert set(by_url) == {worker.url, _DEAD_URL}
    live = by_url[worker.url]
    assert live["health"]["status"] == "ok"
    assert live["metrics"]["schema"] == "repro.telemetry/1"
    dead = by_url[_DEAD_URL]
    assert dead["metrics"] is None and "error" in dead


def test_fleet_sweep_doc_validates_as_sweep2(worker):
    from repro.fleet import fleet_sweep_doc
    from repro.obs.schema import validate_snapshot
    from repro.telemetry.metrics import MetricsRegistry

    registry = MetricsRegistry()
    backend = RemoteBackend([worker.url])
    units = sweep_units("water", MachineKind.IPSC860, [1], "tiny")
    outcome = run_units_resilient(units, jobs=1, backend=backend,
                                  registry=registry)
    fleet = backend.scrape_fleet(timeout=5.0)
    fleet["host"] = registry.snapshot()
    doc = fleet_sweep_doc("water", "ipsc860", "tiny",
                          _rows_for(units, outcome), fleet)
    assert doc["schema"] == "repro.sweep/2"
    assert validate_snapshot(doc) == []


def test_remote_sweep_trace_merges_host_and_worker_tracks(worker):
    from repro.obs.schema import validate_snapshot
    from repro.telemetry.fleet import FleetTraceCollector, merge_timeline

    trace = FleetTraceCollector()
    units = sweep_units("water", MachineKind.IPSC860, [1, 2], "tiny")
    outcome = run_units_resilient(
        units, jobs=1, backend=RemoteBackend([worker.url], trace=trace))
    assert outcome.ok
    assert trace.sweep is not None
    doc = merge_timeline(trace.records, sweep=trace.sweep)
    assert validate_snapshot(doc) == []
    spans = [e for e in doc["traceEvents"] if e["ph"] != "M"]
    host = [e for e in spans if e["pid"] == 0]
    remote = [e for e in spans if e["pid"] == 1]
    assert len(host) == len(units)       # one dispatch span per unit
    assert len(remote) == len(units)     # one unit span per unit
    assert doc["offsets"][worker.url]["rtt"] is not None


def test_trace_merge_is_reproducible_after_resume(worker, tmp_path):
    """A checkpoint-resumed sweep yields records only for the units it
    actually dispatched, and merging them is deterministic."""
    from repro.fleet.backends import CheckpointBackend
    from repro.fleet.checkpoint import CheckpointJournal
    from repro.obs.snapshot import dump_json as _dump
    from repro.telemetry.fleet import FleetTraceCollector, merge_timeline

    units = sweep_units("water", MachineKind.IPSC860, [1], "tiny")
    assert len(units) == 2
    # Simulate a sweep killed after unit 0: the journal holds exactly
    # that unit's metrics.
    journal = CheckpointJournal(str(tmp_path / "j"))
    journal.open_sweep(units)
    first = executor._run_unit((0, units[0]))
    journal.record(0, units[0], first.metrics.to_json())
    # Resume over the full unit list: unit 0 replays from the journal,
    # only unit 1 is dispatched and traced.
    trace = FleetTraceCollector()
    outcome = run_units_resilient(
        units, jobs=1,
        backend=CheckpointBackend(
            RemoteBackend([worker.url], trace=trace),
            CheckpointJournal(str(tmp_path / "j"))))
    assert outcome.ok
    dispatched = {r["index"] for r in trace.records}
    assert dispatched == {1}
    once = _dump(merge_timeline(trace.records, sweep=trace.sweep))
    again = _dump(merge_timeline(list(reversed(trace.records)),
                                 sweep=trace.sweep))
    assert once == again


def test_cli_sweep_trace_out_writes_perfetto_timeline(worker, tmp_path,
                                                      capsys):
    import json as _json

    from repro.obs.schema import validate_snapshot

    trace_path = tmp_path / "trace.json"
    plain_path = tmp_path / "plain.json"
    remote_path = tmp_path / "remote.json"
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "2", "--jobs", "1",
                 "--backend", "remote", "--workers", worker.url,
                 "--trace-out", str(trace_path),
                 "--json", str(remote_path)]) == 0
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "2", "--jobs", "1",
                 "--json", str(plain_path)]) == 0
    out = capsys.readouterr().out
    assert "fleet trace:" in out
    # Tracing must not change the sweep snapshot: still repro.sweep/1,
    # byte-identical to the serial path.
    assert remote_path.read_bytes() == plain_path.read_bytes()
    doc = _json.loads(trace_path.read_text())
    assert doc["schema"] == "repro.fleet.trace/1"
    assert validate_snapshot(doc) == []
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {0, 1}


def test_cli_sweep_trace_out_requires_remote_backend(capsys, tmp_path):
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--trace-out",
                 str(tmp_path / "t.json")]) == 2
    assert "--backend remote" in capsys.readouterr().err


def test_cli_sweep_fleet_requires_remote_and_json(capsys, tmp_path):
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--fleet"]) == 2
    assert "--backend remote" in capsys.readouterr().err
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--backend", "remote",
                 "--workers", "http://x:1", "--fleet"]) == 2
    assert "--json" in capsys.readouterr().err


def test_cli_sweep_fleet_embeds_worker_metrics(worker, tmp_path, capsys):
    import json as _json

    from repro.obs.schema import validate_snapshot

    out_path = tmp_path / "fleet.json"
    assert main(["sweep", "--app", "water", "--scale", "tiny",
                 "--procs", "1", "--jobs", "1",
                 "--backend", "remote", "--workers", worker.url,
                 "--fleet", "--json", str(out_path)]) == 0
    capsys.readouterr()
    doc = _json.loads(out_path.read_text())
    assert doc["schema"] == "repro.sweep/2"
    assert validate_snapshot(doc) == []
    assert [w["url"] for w in doc["fleet"]["workers"]] == [worker.url]
    assert doc["fleet"]["workers"][0]["metrics"]["schema"] \
        == "repro.telemetry/1"
    assert doc["fleet"]["host"]["schema"] == "repro.telemetry/1"


def test_cli_status_fleet_dashboard_and_json(worker, capsys):
    import json as _json

    from repro.obs.schema import validate_telemetry

    assert main(["status", "--fleet", worker.url]) == 0
    out = capsys.readouterr().out
    assert "repro fleet — 1 workers" in out
    assert worker.url in out and "units" in out

    assert main(["status", "--fleet", worker.url, "--json"]) == 0
    snapshot = _json.loads(capsys.readouterr().out)
    assert snapshot["schema"] == "repro.telemetry/1"
    assert validate_telemetry(snapshot) == []


def test_cli_status_fleet_marks_dead_workers(worker, capsys):
    assert main(["status", "--fleet", worker.url, _DEAD_URL,
                 "--timeout", "5"]) == 2
    out = capsys.readouterr().out
    assert "DOWN" in out and worker.url in out


def test_cli_status_fleet_json_dead_worker_exits_2(worker, capsys):
    import json as _json

    assert main(["status", "--fleet", worker.url, _DEAD_URL,
                 "--timeout", "5", "--json"]) == 2
    captured = capsys.readouterr()
    # The aggregate over live workers still prints; the exit code flags
    # the outage for cron/CI probes.
    snapshot = _json.loads(captured.out)
    assert snapshot["schema"] == "repro.telemetry/1"
    assert "down" in captured.err


def test_cli_status_requires_url_or_fleet(capsys):
    assert main(["status"]) == 2
    assert "--fleet" in capsys.readouterr().err
