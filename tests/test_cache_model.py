"""Unit tests for the DASH directory-cache cost model."""

import pytest

from repro.machines import ClusterMesh, DirectoryCacheModel, LineState
from repro.machines.cache import CacheParams


def make_model(num_processors=8, **overrides):
    params = CacheParams(**overrides) if overrides else CacheParams()
    mesh = ClusterMesh(num_processors, cluster_size=4)
    model = DirectoryCacheModel(mesh, params)
    return model, params


def seconds(params, lines, cycles):
    return lines * cycles / params.clock_hz


def test_first_read_from_local_memory():
    model, p = make_model()
    model.set_home(0, processor=1)  # same cluster as proc 0
    cost = model.read(0, 0, nbytes=160)  # 10 lines
    assert cost == pytest.approx(seconds(p, 10, p.cycles_local_memory))
    assert 0 in model.holders(0)


def test_read_hit_after_first_read():
    model, p = make_model()
    model.set_home(0, 0)
    model.read(0, 0, 160)
    cost = model.read(0, 0, 160)
    assert cost == pytest.approx(seconds(p, 10, p.cycles_l1))


def test_large_object_hits_in_l2_not_l1():
    model, p = make_model()
    model.set_home(0, 0)
    nbytes = 100 * 1024  # larger than the 64 KB L1
    model.read(0, 0, nbytes)
    cost = model.read(0, 0, nbytes)
    lines = -(-nbytes // p.line_bytes)
    assert cost == pytest.approx(seconds(p, lines, p.cycles_l2))


def test_remote_home_read_costs_more_than_local():
    model, p = make_model()
    model.set_home(0, processor=4)  # cluster 1; reader in cluster 0
    remote = model.read(0, 0, 160)
    model2, _ = make_model()
    model2.set_home(0, processor=0)
    local = model2.read(0, 0, 160)
    assert remote > local


def test_cluster_neighbor_cache_satisfies_read():
    model, p = make_model()
    model.set_home(0, processor=4)
    model.read(1, 0, 160)          # proc 1 (cluster 0) caches it
    cost = model.read(0, 0, 160)   # proc 0 reads from neighbour's cache
    assert cost == pytest.approx(seconds(p, 10, p.cycles_cluster_cache))


def test_write_invalidates_other_copies():
    model, p = make_model()
    model.set_home(0, 0)
    model.read(4, 0, 160)
    model.read(0, 0, 160)
    model.write(0, 0, 160)
    assert model.holders(0) == {0}
    assert model.object_state(0) is LineState.DIRTY


def test_remote_dirty_read_is_most_expensive():
    model, p = make_model(num_processors=12)
    model.set_home(0, processor=4)   # home cluster 1
    model.write(8, 0, 160)           # dirty in cluster 2
    cost = model.read(0, 0, 160)     # reader in cluster 0: 3-hop case
    assert cost == pytest.approx(
        seconds(p, 10, p.cycles_remote_dirty * p.contention_factor))


def test_write_hit_when_exclusively_dirty():
    model, p = make_model()
    model.set_home(0, 0)
    model.write(0, 0, 160)
    cost = model.write(0, 0, 160)
    assert cost == pytest.approx(seconds(p, 10, p.cycles_l1))


def test_capacity_eviction():
    model, p = make_model(l2_capacity_bytes=1024)
    model.set_home(0, 0)
    model.set_home(1, 0)
    model.read(0, 0, 800)
    model.read(0, 1, 800)  # evicts object 0 from proc 0's cache
    assert 0 not in model.holders(0)
    # Re-reading object 0 misses again.
    cost = model.read(0, 0, 800)
    assert cost > seconds(p, 50, p.cycles_l2)


def test_stats_accumulate():
    model, _ = make_model()
    model.set_home(0, 4)
    model.read(0, 0, 160)
    model.read(0, 0, 160)
    model.write(0, 0, 160)
    stats = model.stats
    assert stats.counters["dash.read_miss"].value == 1
    assert stats.counters["dash.read_hit"].value == 1
    assert stats.accumulators["dash.remote_bytes"].total >= 160
