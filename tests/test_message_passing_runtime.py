"""Tests for the message-passing (iPSC/860) Jade runtime."""

import numpy as np
import pytest

from repro.core import AccessSpec, JadeBuilder, run_stripped
from repro.machines import Ipsc860Machine
from repro.machines.ipsc860 import IpscParams
from repro.runtime import LocalityLevel, RuntimeOptions, run_message_passing

from tests.helpers import (
    assert_matches_stripped,
    chain_program,
    fanout_program,
    independent_program,
    reduction_program,
)


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
def test_reduction_matches_stripped(nprocs):
    program = reduction_program(num_workers=8, iterations=3)
    metrics = run_message_passing(program, nprocs)
    assert_matches_stripped(program, metrics)
    assert metrics.tasks_executed == 24


@pytest.mark.parametrize("nprocs", [3, 5, 24])
def test_non_power_of_two_partitions(nprocs):
    """The paper's 24-processor runs: a partial partition of a larger cube."""
    program = reduction_program(num_workers=8, iterations=2)
    metrics = run_message_passing(program, nprocs)
    assert_matches_stripped(program, metrics)


@pytest.mark.parametrize(
    "level", [LocalityLevel.LOCALITY, LocalityLevel.NO_LOCALITY]
)
def test_all_levels_produce_serial_results(level):
    program = reduction_program(num_workers=6, iterations=2)
    metrics = run_message_passing(program, 4, RuntimeOptions(locality=level))
    assert_matches_stripped(program, metrics)


def test_chain_serializes():
    program = chain_program(length=10, cost=1e-3)
    metrics = run_message_passing(program, 8)
    assert_matches_stripped(program, metrics)
    assert metrics.elapsed >= 10 * 1e-3


def test_fanout_replicates_object():
    """Concurrent readers each receive a copy: replication in action."""
    program = fanout_program(num_readers=6, cost=5e-3, nbytes=50_000)
    metrics = run_message_passing(program, 8)
    assert_matches_stripped(program, metrics)
    # At least 5 copies of the 50 KB object moved (some readers may share
    # the producing node).
    assert metrics.object_bytes >= 5 * 50_000


def test_no_replication_serializes_readers():
    """§5.1: without replication, concurrent reads of one object serialize.

    Compute-heavy readers: with replication each node computes on its own
    copy concurrently; with a single exclusively-held copy the 50 ms task
    executions serialize behind one another.
    """
    make = lambda: fanout_program(num_readers=8, cost=50e-3, nbytes=20_000)
    replicated = run_message_passing(make(), 8, RuntimeOptions(replication=True))
    exclusive = run_message_passing(
        make(), 8, RuntimeOptions(replication=False, adaptive_broadcast=False)
    )
    assert_matches_stripped(make(), exclusive)
    assert exclusive.elapsed > replicated.elapsed * 2.0
    # The serialized run is at least the sum of the reader costs.
    assert exclusive.elapsed >= 8 * 50e-3


def test_locality_heuristic_reaches_full_locality():
    program = reduction_program(num_workers=8, iterations=3, cost=5e-3)
    metrics = run_message_passing(
        program, 8, RuntimeOptions(locality=LocalityLevel.LOCALITY)
    )
    assert metrics.task_locality_pct == pytest.approx(100.0)


def test_no_locality_reduces_locality_percentage():
    # More workers than processors: first-come first-served assignment
    # cannot track the contribution arrays' owners.
    program = reduction_program(num_workers=8, iterations=3, cost=5e-3)
    metrics = run_message_passing(
        program, 5, RuntimeOptions(locality=LocalityLevel.NO_LOCALITY)
    )
    locality = run_message_passing(
        reduction_program(num_workers=8, iterations=3, cost=5e-3),
        5, RuntimeOptions(locality=LocalityLevel.LOCALITY),
    )
    assert metrics.task_locality_pct < 100.0
    assert locality.task_locality_pct > metrics.task_locality_pct


def test_locality_level_reduces_object_traffic():
    """Ocean's shape: each iteration updates per-block state in place.

    With the locality heuristic a block stays on the processor that last
    wrote it (zero fetches after the first iteration); FCFS assignment
    scatters the updates and drags blocks across the machine.
    """
    def make():
        jade = JadeBuilder()
        blocks = [
            jade.object(f"blk{w}", initial=np.zeros(8), sim_nbytes=50_000, home=w)
            for w in range(8)
        ]

        def update(w):
            def body(ctx):
                ctx.wr(blocks[w])[:] += 1.0
            return body

        for it in range(6):
            for w in range(8):
                jade.task(f"u.{it}.{w}", body=update(w), rw=[blocks[w]],
                          cost=3e-3 + w * 1e-4)
        return jade.finish("blocks")

    with_loc = run_message_passing(
        make(), 8, RuntimeOptions(locality=LocalityLevel.LOCALITY,
                                  adaptive_broadcast=False)
    )
    without = run_message_passing(
        make(), 8, RuntimeOptions(locality=LocalityLevel.NO_LOCALITY,
                                  adaptive_broadcast=False)
    )
    assert_matches_stripped(make(), with_loc)
    assert_matches_stripped(make(), without)
    assert with_loc.object_bytes < without.object_bytes
    assert with_loc.task_locality_pct > without.task_locality_pct


def test_adaptive_broadcast_triggers_on_widely_read_object():
    """Every processor reads ``state`` each iteration, so after the first
    iteration the communicator must broadcast new versions."""
    program = reduction_program(num_workers=8, iterations=4, cost=5e-3,
                                hint_homes=True)
    metrics = run_message_passing(program, 8, RuntimeOptions())
    assert metrics.broadcasts >= 1


def test_adaptive_broadcast_off_means_no_broadcasts():
    program = reduction_program(num_workers=8, iterations=4, cost=5e-3)
    metrics = run_message_passing(
        program, 8, RuntimeOptions(adaptive_broadcast=False)
    )
    assert metrics.broadcasts == 0
    assert_matches_stripped(
        reduction_program(num_workers=8, iterations=4, cost=5e-3), metrics
    )


def test_explicit_placement_is_honored():
    jade = JadeBuilder()
    # Initial owners match the placements (home hints), so every placed
    # task also runs on its target.
    cells = [jade.object(f"c{i}", initial=np.zeros(2), home=1 + i % 3)
             for i in range(6)]
    for i in range(6):
        jade.task(f"t{i}", body=None, wr=[cells[i]], cost=1e-3,
                  placement=1 + i % 3)
    program = jade.finish("placed")
    metrics = run_message_passing(
        program, 4, RuntimeOptions(locality=LocalityLevel.TASK_PLACEMENT)
    )
    assert metrics.tasks_per_processor[0] == 0
    assert metrics.tasks_per_processor[1] == 2
    assert metrics.task_locality_pct == pytest.approx(100.0)


def test_concurrent_fetch_accounting():
    """A task reading two remote objects: object latency ≈ 2x task latency
    when fetched concurrently, ≈ equal when serialized."""
    def make():
        jade = JadeBuilder()
        a = jade.object("a", initial=np.zeros(4), sim_nbytes=80_000)
        b = jade.object("b", initial=np.zeros(4), sim_nbytes=80_000)
        out = jade.object("out", initial=np.zeros(4), home=3)

        def wa(ctx):
            ctx.wr(a)[:] = 1.0

        def wb(ctx):
            ctx.wr(b)[:] = 2.0

        def consume(ctx):
            ctx.wr(out)[:] = ctx.rd(a) + ctx.rd(b)

        jade.task("wa", body=wa, wr=[a], cost=1e-3, placement=1)
        jade.task("wb", body=wb, wr=[b], cost=1e-3, placement=2)
        jade.task("consume", body=consume,
                  spec=AccessSpec().wr(out).rd(a).rd(b), cost=1e-3, placement=3)
        return jade.finish("two-fetch")

    conc = run_message_passing(make(), 4, RuntimeOptions(concurrent_fetches=True))
    ser = run_message_passing(make(), 4, RuntimeOptions(concurrent_fetches=False))
    assert_matches_stripped(make(), conc)
    assert_matches_stripped(make(), ser)
    # Two 80 KB objects from two different owners: concurrent fetching
    # overlaps parts of the replies (the receiving NIC still serializes
    # the payloads — one reason §5.5 found so little to gain), serial
    # fetching overlaps nothing.
    assert conc.object_to_task_latency_ratio > 1.1
    assert ser.object_to_task_latency_ratio < 1.1
    assert conc.mean_task_latency < ser.mean_task_latency


def test_latency_hiding_overlaps_fetch_with_execution():
    """With target=2 a node fetches the next task's objects while computing.

    Each task reads a distinct 200 KB input owned by the main processor,
    so every task has an ~85 ms fetch; with target=1 the fetches are fully
    exposed between 60 ms executions, with target=2 they overlap.
    """
    def make():
        jade = JadeBuilder()
        inputs = [jade.object(f"in{i}", initial=np.arange(4.0) + i,
                              sim_nbytes=200_000) for i in range(6)]
        outs = [jade.object(f"o{i}", initial=np.zeros(4), home=1)
                for i in range(6)]

        def consume(i):
            def body(ctx):
                ctx.wr(outs[i])[:] = ctx.rd(inputs[i]) * i
            return body

        for i in range(6):
            jade.task(f"t{i}", body=consume(i),
                      spec=AccessSpec().wr(outs[i]).rd(inputs[i]), cost=60e-3,
                      placement=1)
        return jade.finish("hide")

    base = run_message_passing(make(), 2, RuntimeOptions(
        target_tasks_per_processor=1, adaptive_broadcast=False))
    hidden = run_message_passing(make(), 2, RuntimeOptions(
        target_tasks_per_processor=2, adaptive_broadcast=False))
    assert_matches_stripped(make(), hidden)
    assert hidden.elapsed < base.elapsed * 0.8


def test_work_free_runs_without_object_traffic():
    program = reduction_program(num_workers=8, iterations=2, cost=5e-3)
    metrics = run_message_passing(program, 4, RuntimeOptions(work_free=True))
    assert metrics.object_bytes == 0.0
    assert metrics.task_time_total == 0.0
    assert metrics.elapsed > 0.0


def test_eager_update_pushes_new_versions():
    program = reduction_program(num_workers=8, iterations=4, cost=5e-3)
    metrics = run_message_passing(
        program, 8,
        RuntimeOptions(adaptive_broadcast=False, eager_update=True),
    )
    assert metrics.eager_updates > 0
    assert_matches_stripped(
        reduction_program(num_workers=8, iterations=4, cost=5e-3), metrics
    )


def test_mgmt_time_accumulates_on_main():
    params = IpscParams()
    params.task_create_seconds = 1e-3
    params.task_assign_seconds = 0.5e-3
    params.completion_handling_seconds = 0.5e-3
    params.local_mgmt_factor = 1.0  # no local-dispatch discount here
    machine = Ipsc860Machine(4, params)
    program = independent_program(10, cost=1e-3)
    metrics = run_message_passing(program, 4, machine=machine)
    assert metrics.mgmt_time_main == pytest.approx(10 * 2e-3)
    assert metrics.elapsed >= 10 * 1e-3


def test_determinism():
    def run():
        program = reduction_program(num_workers=8, iterations=3)
        m = run_message_passing(program, 8)
        return m.elapsed, m.object_bytes, m.total_messages, m.tasks_on_target

    assert run() == run()


def test_empty_program():
    program = JadeBuilder().finish("empty")
    metrics = run_message_passing(program, 4)
    assert metrics.elapsed == 0.0


def test_single_processor_has_no_object_messages():
    program = reduction_program(num_workers=4, iterations=2)
    metrics = run_message_passing(
        program, 1, RuntimeOptions(adaptive_broadcast=False)
    )
    assert_matches_stripped(program, metrics)
    assert metrics.object_bytes == 0.0
