"""The telemetry layer: metrics registry, structured logging, heartbeats.

The load-bearing properties: thread-safety of the counters, deterministic
exposition layout (same counts -> same bytes), a faithful Prometheus
text/JSON round-trip, the schema-versioned snapshot validating, and —
above all — zero perturbation: instrumented runs produce byte-identical
results.
"""

import io
import json
import logging
import threading

import pytest

from repro.obs.schema import (
    TELEMETRY_SCHEMA,
    validate_snapshot,
    validate_telemetry,
)
from repro.telemetry.log import (
    JsonLogFormatter,
    configure_logging,
    current_job_id,
    get_logger,
    job_context,
    log_event,
    reset_logging,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    default_registry,
    parse_prometheus_text,
    sample_value,
)


# ---------------------------------------------------------------------- #
# the registry
# ---------------------------------------------------------------------- #
def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    jobs = reg.counter("jobs_total", "jobs", labels=("kind",))
    jobs.inc(kind="run")
    jobs.inc(2, kind="sweep")
    assert jobs.value(kind="run") == 1
    assert jobs.value(kind="sweep") == 2
    with pytest.raises(ValueError, match="cannot decrease"):
        jobs.inc(-1, kind="run")

    depth = reg.gauge("queue_depth", "depth")
    depth.set(5)
    depth.dec(2)
    assert depth.value() == 3

    lat = reg.histogram("latency_seconds", "latency", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        lat.observe(value)
    [sample] = lat.sample_docs()
    assert [b["count"] for b in sample["buckets"]] == [1, 2, 3]  # cumulative
    assert sample["count"] == 4  # the implicit +Inf bucket
    assert sample["sum"] == pytest.approx(55.55)


def test_label_schema_is_enforced():
    reg = MetricsRegistry()
    c = reg.counter("hits_total", "hits", labels=("route",))
    with pytest.raises(ValueError, match="takes labels"):
        c.inc(method="GET")
    # Get-or-create: same schema returns the same family...
    assert reg.counter("hits_total", "hits", labels=("route",)) is c
    # ...different type or labels is a hard error, not a silent split.
    with pytest.raises(ValueError, match="already registered"):
        reg.gauge("hits_total", "hits", labels=("route",))
    with pytest.raises(ValueError, match="already registered"):
        reg.counter("hits_total", "hits", labels=("route", "method"))
    with pytest.raises(ValueError, match="invalid metric name"):
        reg.counter("bad name", "x")
    with pytest.raises(ValueError, match="strictly increasing"):
        reg.histogram("h", "x", buckets=(1.0, 1.0))


def test_counter_is_thread_safe():
    reg = MetricsRegistry()
    c = reg.counter("spins_total", "spins")

    def spin():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=spin) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value() == 8000


def test_exposition_layout_is_deterministic():
    """Same counts, different registration/increment order -> same bytes."""
    def build(order):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "req", labels=("route", "status"))
        g = reg.gauge("depth", "d")
        for route, status in order:
            c.inc(route=route, status=status)
        g.set(2)
        return reg

    a = build([("/a", "200"), ("/b", "404"), ("/a", "200")])
    b = build([("/a", "200"), ("/a", "200"), ("/b", "404")])
    assert a.snapshot_text() == b.snapshot_text()
    assert a.render_prometheus() == b.render_prometheus()
    # Samples come out sorted by label-value tuple.
    [family] = [f for f in a.snapshot()["metrics"]
                if f["name"] == "requests_total"]
    assert [s["labels"]["route"] for s in family["samples"]] == ["/a", "/b"]


def test_prometheus_text_round_trip():
    reg = MetricsRegistry()
    reg.counter("hits_total", "hits", labels=("route",)).inc(
        3, route='/v1/jobs "quoted"\nline')
    reg.gauge("in_flight", "now").set(1.5)
    hist = reg.histogram("lat_seconds", "lat", buckets=(0.5, 2.0))
    hist.observe(0.1)
    hist.observe(1.0)
    hist.observe(9.0)

    parsed = parse_prometheus_text(reg.render_prometheus())
    assert parsed["types"] == {"hits_total": "counter", "in_flight": "gauge",
                               "lat_seconds": "histogram"}
    assert sample_value(parsed, "hits_total",
                        route='/v1/jobs "quoted"\nline') == 3
    assert sample_value(parsed, "in_flight") == 1.5
    assert sample_value(parsed, "lat_seconds_bucket", le="0.5") == 1
    assert sample_value(parsed, "lat_seconds_bucket", le="2") == 2
    assert sample_value(parsed, "lat_seconds_bucket", le="+Inf") == 3
    assert sample_value(parsed, "lat_seconds_count") == 3
    assert sample_value(parsed, "lat_seconds_sum") == pytest.approx(10.1)


def test_snapshot_validates_and_rejects_disorder():
    reg = MetricsRegistry()
    reg.counter("b_total", "b").inc()
    reg.counter("a_total", "a", labels=("k",)).inc(k="x")
    reg.histogram("h_seconds", "h").observe(0.2)
    snap = reg.snapshot()
    assert snap["schema"] == TELEMETRY_SCHEMA
    assert validate_telemetry(snap) == []
    # validate_snapshot dispatches on the schema tag (repro check path).
    assert validate_snapshot(snap) == []

    broken = json.loads(json.dumps(snap))
    broken["metrics"].reverse()  # names no longer ascending
    assert validate_telemetry(broken) != []
    negative = json.loads(json.dumps(snap))
    negative["metrics"][0]["samples"][0]["value"] = -1
    assert validate_telemetry(negative) != []


def test_default_registry_is_a_process_singleton():
    assert default_registry() is default_registry()
    assert DEFAULT_LATENCY_BUCKETS[0] < DEFAULT_LATENCY_BUCKETS[-1]


# ---------------------------------------------------------------------- #
# structured logging
# ---------------------------------------------------------------------- #
@pytest.fixture()
def log_stream():
    stream = io.StringIO()
    yield stream
    reset_logging()


def test_job_context_binds_and_restores():
    assert current_job_id() is None
    with job_context("j000001"):
        assert current_job_id() == "j000001"
        with job_context("j000002"):
            assert current_job_id() == "j000002"
        assert current_job_id() == "j000001"
    assert current_job_id() is None


def test_json_log_lines_carry_context_and_fields(log_stream):
    configure_logging(json_mode=True, level="info", stream=log_stream)
    logger = get_logger("serve.test")
    with job_context("j000042"):
        log_event(logger, logging.INFO, "job_started", kind="run",
                  skipped=None)
    doc = json.loads(log_stream.getvalue())
    assert doc["event"] == "job_started"
    assert doc["logger"] == "repro.serve.test"
    assert doc["level"] == "info"
    assert doc["job_id"] == "j000042"  # stamped from the bound context
    assert doc["kind"] == "run"
    assert "skipped" not in doc  # None fields are dropped
    assert doc["ts"] > 0


def test_text_log_lines_render_fields(log_stream):
    configure_logging(json_mode=False, level="debug", stream=log_stream)
    log_event(get_logger("fleet"), logging.DEBUG, "sweep_progress",
              job_id="j000007", completed=3, total=8)
    line = log_stream.getvalue()
    assert "repro.fleet: sweep_progress" in line
    assert "job=j000007" in line
    assert "completed=3" in line and "total=8" in line


def test_configure_logging_is_idempotent_and_validates(log_stream):
    configure_logging(stream=log_stream)
    configure_logging(stream=log_stream)
    root = logging.getLogger("repro")
    ours = [h for h in root.handlers
            if getattr(h, "_repro_telemetry", False)]
    assert len(ours) == 1
    with pytest.raises(ValueError, match="unknown log level"):
        configure_logging(level="loud")


def test_unconfigured_logging_is_silent_below_warning(capsys):
    reset_logging()
    log_event(get_logger("serve.jobs"), logging.INFO, "job_started")
    assert capsys.readouterr().err == ""


def test_json_formatter_includes_exceptions():
    import sys

    formatter = JsonLogFormatter()
    try:
        raise RuntimeError("boom")
    except RuntimeError:
        record = logging.LogRecord("repro.t", logging.ERROR, __file__, 1,
                                   "job_failed", (),
                                   exc_info=sys.exc_info())
    doc = json.loads(formatter.format(record))
    assert "RuntimeError: boom" in doc["exc"]


# ---------------------------------------------------------------------- #
# fleet heartbeats
# ---------------------------------------------------------------------- #
def test_fleet_progress_heartbeats_and_counters(caplog):
    from repro.fleet import run_units_resilient, sweep_units
    from repro.apps import MachineKind

    registry = MetricsRegistry()
    units = sweep_units("water", MachineKind("ipsc860"), [1, 2],
                        scale="tiny")[:2]
    with caplog.at_level(logging.INFO, logger="repro.fleet"):
        outcome = run_units_resilient(units, jobs=1, registry=registry,
                                      progress_interval=0.0)
    assert outcome.ok
    events = [(r.getMessage(), r.fields) for r in caplog.records]
    progress = [f for e, f in events if e == "sweep_progress"]
    assert len(progress) == 2  # interval 0: one heartbeat per completion
    assert progress[0]["completed"] == 1 and progress[0]["total"] == 2
    assert progress[0]["eta_s"] >= 0
    assert progress[1]["per_worker"]  # serial path: everything on one pid
    [complete] = [f for e, f in events if e == "sweep_complete"]
    assert complete["completed"] == 2
    assert complete["pool_restarts"] == 0

    parsed = parse_prometheus_text(registry.render_prometheus())
    assert sample_value(parsed, "repro_fleet_units_dispatched_total") == 2
    assert sample_value(parsed, "repro_fleet_units_completed_total") == 2


# ---------------------------------------------------------------------- #
# the no-perturbation invariant
# ---------------------------------------------------------------------- #
def test_instrumented_run_output_is_byte_identical(capsys):
    """Telemetry observes, never perturbs: a fault-free run prints the
    same bytes with logging and metrics fully enabled."""
    from repro.__main__ import main

    argv = ["run", "--app", "water", "--scale", "tiny", "--procs", "2"]
    assert main(argv) == 0
    quiet = capsys.readouterr().out
    try:
        configure_logging(json_mode=True, level="debug")
        default_registry().counter("repro_test_noise_total", "noise").inc()
        assert main(argv) == 0
        noisy = capsys.readouterr().out
    finally:
        reset_logging()
    assert noisy == quiet


def test_cache_key_untouched_by_telemetry():
    """Cache keys hash the request's canonical JSON only — no telemetry
    state can leak into the content address."""
    from repro.serve import RunRequest

    request = RunRequest(app="water", machine="ipsc860", scale="tiny",
                         procs=2)
    before = request.cache_key()
    configure_logging(json_mode=True, level="debug")
    try:
        with job_context("j999999"):
            assert RunRequest(app="water", machine="ipsc860", scale="tiny",
                              procs=2).cache_key() == before
    finally:
        reset_logging()


# ---------------------------------------------------------------------- #
# the status dashboard renderer
# ---------------------------------------------------------------------- #
def test_render_dashboard_sections():
    from repro.telemetry.dashboard import render_dashboard

    health = {
        "status": "ok", "uptime": 12.0, "workers": 2, "sweep_jobs": 4,
        "jobs": {"queued": 0, "running": 1, "done": 3, "failed": 1},
        "counters": {"submitted": 5, "completed": 3, "failed": 1},
        "cache": {"hits": 3, "misses": 1, "stores": 1, "entries": 1,
                  "evictions": 0, "disk_entries": 1, "disk_bytes": 2048},
    }
    snapshot = {
        "schema": TELEMETRY_SCHEMA,
        "metrics": [
            {"name": "repro_fleet_units_dispatched_total", "type": "counter",
             "help": "", "label_names": [],
             "samples": [{"labels": {}, "value": 8}]},
            {"name": "repro_http_requests_total", "type": "counter",
             "help": "", "label_names": ["route", "method", "status"],
             "samples": [{"labels": {"route": "/v1/jobs", "method": "POST",
                                     "status": "200"}, "value": 5}]},
            {"name": "repro_job_latency_seconds", "type": "histogram",
             "help": "", "label_names": ["kind"],
             "samples": [{"labels": {"kind": "run"},
                          "buckets": [{"le": 1.0, "count": 2}],
                          "count": 2, "sum": 0.8}]},
        ],
    }
    text = render_dashboard("http://h:1", health, snapshot)
    assert "status ok, uptime 12s" in text
    assert "running 1" in text and "submitted 5" in text
    assert "run: count 2, mean 0.4 s, p95 <= 1 s" in text
    assert "hit ratio 75.0%" in text
    assert "disk 1 entries / 2.0 KiB" in text
    assert "POST /v1/jobs" in text
    assert "dispatched 8" in text  # the fleet section appears when non-zero


def test_render_fleet_dashboard_rows_and_totals():
    from repro.telemetry.dashboard import render_fleet_dashboard

    def snap(units, joined):
        return {
            "schema": TELEMETRY_SCHEMA,
            "metrics": [
                {"name": "repro_worker_units_executed_total",
                 "type": "counter", "help": "", "label_names": [],
                 "samples": [{"labels": {}, "value": units}]},
                {"name": "repro_worker_duplicates_joined_total",
                 "type": "counter", "help": "", "label_names": [],
                 "samples": [{"labels": {}, "value": joined}]},
                {"name": "repro_worker_unit_seconds", "type": "histogram",
                 "help": "", "label_names": [],
                 "samples": [{"labels": {},
                              "buckets": [{"le": 1.0, "count": units}],
                              "count": units, "sum": 0.5 * units}]},
            ],
        }

    entries = [
        {"url": "http://a:1", "health": {"status": "ok"},
         "metrics": snap(3, 1)},
        {"url": "http://b:2", "health": None, "metrics": None,
         "error": "unreachable"},
    ]
    text = render_fleet_dashboard(entries)
    assert "repro fleet — 2 workers" in text
    assert "http://a:1  ok  units 3  joined 1" in text
    assert "count 3, mean 0.5 s" in text
    assert "http://b:2  DOWN  (unreachable)" in text
    assert "total     units 3  joined 1" in text
