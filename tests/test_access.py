"""Unit tests for access modes and access specifications."""

import pytest

from repro.core import AccessMode, AccessSpec, ObjectRegistry
from repro.errors import SpecificationError


@pytest.fixture()
def objs():
    reg = ObjectRegistry()
    return [reg.create(f"o{i}") for i in range(4)]


def test_mode_read_write_predicates():
    assert AccessMode.RD.reads and not AccessMode.RD.writes
    assert AccessMode.WR.writes and not AccessMode.WR.reads
    assert AccessMode.RW.reads and AccessMode.RW.writes


def test_mode_conflicts():
    assert not AccessMode.RD.conflicts_with(AccessMode.RD)
    assert AccessMode.RD.conflicts_with(AccessMode.WR)
    assert AccessMode.WR.conflicts_with(AccessMode.RD)
    assert AccessMode.RW.conflicts_with(AccessMode.RW)


def test_declaration_order_preserved(objs):
    spec = AccessSpec().wr(objs[2]).rd(objs[0]).rd(objs[1])
    assert [d.obj for d in spec] == [objs[2], objs[0], objs[1]]
    assert spec.locality_object is objs[2]


def test_constructor_lists(objs):
    spec = AccessSpec(rd=[objs[0], objs[1]], wr=[objs[2]])
    assert spec.may_read(objs[0])
    assert spec.may_write(objs[2])
    assert not spec.may_write(objs[0])
    assert not spec.declares(objs[3])
    assert len(spec) == 3


def test_duplicate_declaration_merges_to_rw(objs):
    spec = AccessSpec().rd(objs[0]).wr(objs[0])
    assert spec.mode_of(objs[0]) is AccessMode.RW
    assert len(spec) == 1
    # The merged object keeps its first-declaration position.
    spec2 = AccessSpec().rd(objs[1]).rd(objs[0]).wr(objs[1])
    assert spec2.locality_object is objs[1]


def test_rw_declaration(objs):
    spec = AccessSpec(rw=[objs[0]])
    assert spec.may_read(objs[0]) and spec.may_write(objs[0])


def test_reads_writes_lists(objs):
    spec = AccessSpec().wr(objs[0]).rd(objs[1]).rw(objs[2])
    assert spec.reads() == [objs[1], objs[2]]
    assert spec.writes() == [objs[0], objs[2]]
    assert spec.objects() == [objs[0], objs[1], objs[2]]


def test_conflicts_between_specs(objs):
    reader = AccessSpec(rd=[objs[0]])
    reader2 = AccessSpec(rd=[objs[0]])
    writer = AccessSpec(wr=[objs[0]])
    other = AccessSpec(wr=[objs[1]])
    assert not reader.conflicts_with(reader2)
    assert reader.conflicts_with(writer)
    assert writer.conflicts_with(reader)
    assert not writer.conflicts_with(other)


def test_empty_spec_has_no_locality_object():
    spec = AccessSpec()
    assert spec.locality_object is None
    assert len(spec) == 0


def test_non_object_declaration_rejected():
    with pytest.raises(SpecificationError):
        AccessSpec().rd("not-an-object")
