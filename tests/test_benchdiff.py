"""Tests for the bench regression gate (``repro bench-diff``)."""

import json
import math

import pytest

from repro.__main__ import main
from repro.obs.benchdiff import diff_snapshots, flatten_numeric, render_diff


# --------------------------------------------------------------------- #
# flattening
# --------------------------------------------------------------------- #
def test_flatten_numeric_paths():
    doc = {"a": 1, "b": {"c": 2.5, "d": "text", "e": True},
           "rows": [{"x": 3}, {"x": 4}]}
    flat = flatten_numeric(doc)
    assert flat == {"a": 1.0, "b.c": 2.5, "rows[0].x": 3.0, "rows[1].x": 4.0}


def test_flatten_skips_non_finite():
    assert flatten_numeric({"bad": math.inf, "ok": 1}) == {"ok": 1.0}


# --------------------------------------------------------------------- #
# diff semantics
# --------------------------------------------------------------------- #
def test_identical_snapshots_diff_clean():
    flat = {"m.elapsed": 1.5, "m.tasks": 16.0}
    result = diff_snapshots(flat, dict(flat), threshold_pct=0.0)
    assert result.ok and result.compared == 2 and result.changed == []


def test_regression_past_threshold_in_either_direction():
    old = {"elapsed": 100.0, "tasks": 50.0}
    worse = diff_snapshots(old, {"elapsed": 110.0, "tasks": 50.0}, 2.0)
    assert not worse.ok
    assert worse.regressions[0].path == "elapsed"
    assert worse.regressions[0].rel_pct == pytest.approx(10.0)
    # An unexplained improvement is also a deviation from the baseline.
    better = diff_snapshots(old, {"elapsed": 90.0, "tasks": 50.0}, 2.0)
    assert not better.ok


def test_change_within_threshold_passes():
    result = diff_snapshots({"e": 100.0}, {"e": 101.0}, threshold_pct=2.0)
    assert result.ok and len(result.changed) == 1


def test_zero_baseline_change_is_infinite_delta():
    result = diff_snapshots({"e": 0.0}, {"e": 0.001}, threshold_pct=50.0)
    assert not result.ok
    assert math.isinf(result.regressions[0].rel_pct)


def test_ignore_prefix_excludes_paths():
    old = {"timeline.s[0].t": 1.0, "metrics.elapsed": 2.0}
    new = {"timeline.s[0].t": 9.0, "metrics.elapsed": 2.0}
    result = diff_snapshots(old, new, 0.0, ignore=("timeline.",))
    assert result.ok and result.compared == 1


def test_disjoint_keys_are_reported_not_failed():
    result = diff_snapshots({"only.old": 1.0, "both": 2.0},
                            {"only.new": 3.0, "both": 2.0}, 0.0)
    assert result.ok
    assert result.only_old == ["only.old"]
    assert result.only_new == ["only.new"]
    text = render_diff(result)
    assert "only in old snapshot" in text and "only in new snapshot" in text


def test_render_marks_regressions():
    result = diff_snapshots({"e": 100.0}, {"e": 150.0}, 10.0)
    text = render_diff(result)
    assert "REGRESSION" in text and "+50.00%" in text


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
def _write(path, doc):
    path.write_text(json.dumps(doc))
    return str(path)


_DOC = {"schema": "repro.bench/1", "name": "t",
        "data": {"elapsed": 1.5, "rows": [{"p": 4, "elapsed": 0.8}]}}


def test_cli_identical_exits_zero(tmp_path, capsys):
    a = _write(tmp_path / "a.json", _DOC)
    b = _write(tmp_path / "b.json", _DOC)
    assert main(["bench-diff", a, b]) == 0
    assert "numerically identical" in capsys.readouterr().out


def test_cli_regression_exits_one(tmp_path, capsys):
    a = _write(tmp_path / "a.json", _DOC)
    regressed = json.loads(json.dumps(_DOC))
    regressed["data"]["elapsed"] *= 1.10
    b = _write(tmp_path / "b.json", regressed)
    assert main(["bench-diff", a, b, "--threshold", "2.0"]) == 1
    out = capsys.readouterr().out
    assert "data.elapsed" in out and "REGRESSION" in out


def test_cli_threshold_tolerates_small_drift(tmp_path):
    a = _write(tmp_path / "a.json", _DOC)
    drifted = json.loads(json.dumps(_DOC))
    drifted["data"]["elapsed"] *= 1.01
    b = _write(tmp_path / "b.json", drifted)
    assert main(["bench-diff", a, b, "--threshold", "5.0"]) == 0


def test_cli_schema_mismatch_exits_two(tmp_path, capsys):
    a = _write(tmp_path / "a.json", _DOC)
    other = dict(_DOC, schema="repro.obs/2")
    b = _write(tmp_path / "b.json", other)
    assert main(["bench-diff", a, b]) == 2
    assert "schema mismatch" in capsys.readouterr().err


def test_cli_missing_or_malformed_input_exits_two(tmp_path, capsys):
    a = _write(tmp_path / "a.json", _DOC)
    assert main(["bench-diff", a, str(tmp_path / "nope.json")]) == 2
    untagged = _write(tmp_path / "untagged.json", {"data": 1})
    assert main(["bench-diff", a, untagged]) == 2
    err = capsys.readouterr().err
    assert "cannot read snapshot" in err and "schema" in err


def test_cli_negative_threshold_exits_two(tmp_path, capsys):
    a = _write(tmp_path / "a.json", _DOC)
    assert main(["bench-diff", a, a, "--threshold", "-1"]) == 2
    assert "threshold" in capsys.readouterr().err


def test_cli_profile_snapshots_round_trip(tmp_path, capsys):
    # End-to-end over real repro.obs/4 snapshots from identical runs.
    a = tmp_path / "p1.json"
    b = tmp_path / "p2.json"
    for path in (a, b):
        assert main(["profile", "--app", "water", "--scale", "tiny",
                     "--procs", "2", "--json", str(path)]) == 0
    capsys.readouterr()
    assert main(["bench-diff", str(a), str(b)]) == 0
    assert "0 changed" in capsys.readouterr().out
