"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Delay, Process, Signal, Simulator, Wait


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == list(range(10))


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []
    assert sim.pending_events == 0


def test_cancellation_heavy_heap_compacts():
    # Regression: lazily-cancelled entries used to accumulate unboundedly;
    # the heap must shrink once cancelled entries dominate.
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(1000)]
    for ev in events[:900]:
        ev.cancel()
    assert sim.pending_events == 100
    # Compaction triggered: the heap shrank with the cancellations instead
    # of retaining all 900 dead entries (cancelled entries can never
    # exceed half the queue once it crosses the compaction floor).
    assert len(sim._queue) <= 2 * sim.pending_events + sim.COMPACT_MIN_QUEUE
    sim.run()
    assert sim.events_fired == 100
    assert sim.pending_events == 0


def test_pending_events_constant_time_counter_stays_consistent():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    drop.cancel()
    drop.cancel()  # double-cancel must not double-count
    assert sim.pending_events == 1
    # peek_time discards the cancelled head lazily; counters must follow.
    assert sim.peek_time() == 1.0
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0
    # Cancelling an already-fired event is a no-op, not a phantom entry.
    keep.cancel()
    assert sim.pending_events == 0


def test_compaction_preserves_event_order():
    sim = Simulator()
    order = []
    events = [sim.schedule(float(i % 7) + 1.0, order.append, i)
              for i in range(200)]
    for ev in events[::2]:
        ev.cancel()
    sim.run()
    expected = sorted((i for i in range(200) if i % 2), key=lambda i: (i % 7, i))
    assert order == expected


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, order.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 2.0


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["a", "b"]


def test_max_events_guard():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_max_events_fires_exactly_n_before_raising():
    # Regression: the guard used to fire N+1 events before raising.
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    with pytest.raises(SimulationError):
        sim.run(max_events=5)
    assert fired == [0, 1, 2, 3, 4]
    assert sim.events_fired == 5


def test_max_events_equal_to_queue_length_completes():
    # Draining exactly N events is healthy — no further work pending,
    # so the safety valve must not trip.
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i), fired.append, i)
    sim.run(max_events=5)
    assert fired == [0, 1, 2, 3, 4]


def test_run_until_advances_clock_when_queue_drains_early():
    # Regression: `run(until=T)` used to leave `now` at the last event's
    # time when the queue drained before T.
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    # An empty queue still advances the clock to the bound...
    sim.run(until=7.5)
    assert sim.now == 7.5
    # ...but never moves it backwards.
    sim.run(until=2.0)
    assert sim.now == 7.5


def test_signal_wakes_waiters_with_payload():
    sim = Simulator()
    sig = Signal(sim, "data")
    got = []
    sig.wait(got.append)
    sig.wait(got.append)
    sim.schedule(2.0, sig.fire, 42)
    sim.run()
    assert got == [42, 42]
    assert sig.fired


def test_signal_wait_after_fire_delivers_immediately():
    sim = Simulator()
    sig = Signal(sim, "data")
    sig.fire("v")
    got = []
    sig.wait(got.append)
    sim.run()
    assert got == ["v"]


def test_signal_double_fire_rejected():
    sim = Simulator()
    sig = Signal(sim)
    sig.fire()
    with pytest.raises(SimulationError):
        sig.fire()


def test_process_delay_and_wait():
    sim = Simulator()
    sig = Signal(sim, "go")
    log = []

    def body():
        log.append(("start", sim.now))
        yield Delay(2.0)
        log.append(("after-delay", sim.now))
        payload = yield Wait(sig)
        log.append(("after-wait", sim.now, payload))
        return "done"

    proc = Process(sim, body(), "p")
    sim.schedule(5.0, sig.fire, "hello")
    sim.run()
    assert log == [("start", 0.0), ("after-delay", 2.0), ("after-wait", 5.0, "hello")]
    assert proc.result == "done"
    assert proc.done.fired


def test_process_plain_yield_interleaves():
    sim = Simulator()
    log = []

    def body(tag):
        for i in range(3):
            log.append((tag, i))
            yield None

    Process(sim, body("a"), "a")
    Process(sim, body("b"), "b")
    sim.run()
    # Deterministic round-robin interleaving at t=0.
    assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)]


def test_quiescence_check_raises_on_stall():
    sim = Simulator()
    sim.run()
    with pytest.raises(DeadlockError) as err:
        sim.check_quiescent(blocked=3)
    assert err.value.pending == 3


def test_quiescence_check_passes_when_nothing_blocked():
    sim = Simulator()
    sim.run()
    sim.check_quiescent(blocked=0)


def test_determinism_of_event_counts():
    def run():
        sim = Simulator()
        out = []
        for i in range(50):
            sim.schedule((i * 7919 % 13) / 10.0, out.append, i)
        sim.run()
        return out, sim.events_fired

    assert run() == run()
