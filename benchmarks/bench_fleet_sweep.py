"""repro.fleet baseline: serial vs parallel 4-app sweep wall time.

The paper's methodology is one big configuration sweep (§5); this
benchmark establishes the first throughput baselines for executing it:

* **serial_wall_s** — the 4-app locality sweep run strictly serially
  (the pre-fleet path);
* **parallel_wall_s** — the same sweep through ``repro.fleet`` with one
  worker per available CPU;
* **events_per_sec** — discrete-event engine throughput (simulator events
  executed per host second) on each path;
* byte-identity of the merged parallel output against the serial path is
  asserted, not just measured.

The wall-clock speedup assertion (> 1.5x) only applies on a multi-core
host running the full paper-scale configuration — on one CPU, or on the
reduced sweeps selected via ``REPRO_BENCH_PROCS`` / ``REPRO_BENCH_SCALE``,
the numbers are recorded in the snapshot but not asserted (set
``REPRO_BENCH_REQUIRE_SPEEDUP=1`` to force the assertion anywhere).
"""

import os
import time

from repro.apps import MachineKind
from repro.fleet import default_jobs, parallel_locality_sweep, sweep_snapshot_doc
from repro.lab import locality_sweep
from repro.obs.snapshot import dump_json

from _support import bench_procs, once, show, snapshot

APPS = ["water", "string", "ocean", "cholesky"]


def _bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "paper")


def _sweep_all(runner):
    start = time.perf_counter()
    rows = {app: runner(app) for app in APPS}
    return rows, time.perf_counter() - start


def test_fleet_sweep_serial_vs_parallel(benchmark):
    procs = bench_procs()
    scale = _bench_scale()
    jobs = default_jobs()

    def measure():
        serial_rows, serial_wall = _sweep_all(
            lambda app: locality_sweep(app, MachineKind.IPSC860, procs, scale))
        parallel_rows, parallel_wall = _sweep_all(
            lambda app: parallel_locality_sweep(
                app, MachineKind.IPSC860, procs, scale, jobs=jobs))
        return serial_rows, serial_wall, parallel_rows, parallel_wall

    serial_rows, serial_wall, parallel_rows, parallel_wall = \
        once(benchmark, measure)

    # Determinism: the merged parallel output is byte-identical to serial.
    for app in APPS:
        serial_doc = dump_json(sweep_snapshot_doc(
            app, "ipsc860", scale, serial_rows[app]))
        parallel_doc = dump_json(sweep_snapshot_doc(
            app, "ipsc860", scale, parallel_rows[app]))
        assert parallel_doc == serial_doc, f"{app}: parallel sweep diverged"

    events = sum(row.metrics.events_fired
                 for rows in serial_rows.values() for row in rows)
    configurations = sum(len(rows) for rows in serial_rows.values())
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else float("inf")
    serial_eps = events / serial_wall if serial_wall > 0 else 0.0
    parallel_eps = events / parallel_wall if parallel_wall > 0 else 0.0

    show(f"fleet sweep: {configurations} configurations, {events} events\n"
         f"  serial    {serial_wall:8.2f} s  ({serial_eps:,.0f} events/s)\n"
         f"  parallel  {parallel_wall:8.2f} s  ({parallel_eps:,.0f} events/s, "
         f"jobs={jobs})\n"
         f"  speedup   {speedup:8.2f}x")
    snapshot(
        "fleet_sweep",
        {
            "configurations": configurations,
            "events_fired": events,
            "serial_wall_s": serial_wall,
            "parallel_wall_s": parallel_wall,
            "speedup": speedup,
            "serial_events_per_sec": serial_eps,
            "parallel_events_per_sec": parallel_eps,
        },
        meta={"apps": APPS, "machine": "ipsc860", "scale": scale,
              "procs": procs, "jobs": jobs, "host_cpus": default_jobs()},
    )

    assert events > 0
    full_run = scale == "paper" and not os.environ.get("REPRO_BENCH_PROCS")
    if full_run:
        # 2 levels x 7 counts for Water/String + 3 levels x 7 for the rest.
        assert configurations == 70
    if os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP") or (jobs >= 2 and full_run):
        assert speedup > 1.5, (
            f"parallel sweep speedup {speedup:.2f}x <= 1.5x "
            f"(jobs={jobs}, serial {serial_wall:.2f}s, "
            f"parallel {parallel_wall:.2f}s)")
