"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's §5 at the
paper's data-set scale, prints it side-by-side with the paper's published
numbers, and asserts the paper's qualitative conclusions (the *shape*:
who wins, by roughly what factor, where crossovers fall).

Simulated executions are deterministic, so each measurement runs exactly
once (``benchmark.pedantic(rounds=1)``); the pytest-benchmark timing that
is recorded is the wall-clock cost of regenerating the artifact.

Set ``REPRO_BENCH_PROCS`` (comma-separated) to sweep a reduced processor
list during development; the default is the paper's 1,2,4,8,16,24,32.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.lab import PAPER_PROCS


def bench_procs() -> List[int]:
    env = os.environ.get("REPRO_BENCH_PROCS")
    if env:
        return [int(x) for x in env.split(",")]
    return list(PAPER_PROCS)


def snapshot(name: str, data: Any,
             meta: Optional[Dict[str, Any]] = None) -> str:
    """Write a machine-readable ``BENCH_<name>.json`` artifact.

    The file lands in ``$REPRO_BENCH_DIR`` when set, else in
    ``benchmarks/out/`` next to this module, wrapped in the versioned
    ``repro.bench/1`` envelope so downstream tooling can validate it.
    """
    from repro.obs.snapshot import BENCH_DIR_ENV, write_bench_snapshot

    directory = os.environ.get(BENCH_DIR_ENV) or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "out")
    return write_bench_snapshot(name, data, directory=directory, meta=meta)


def once(benchmark, fn):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def show(text: str) -> None:
    """Print an artifact block (visible with pytest -s and in CI logs)."""
    print("\n" + text + "\n")


def by_procs(rows, level: str, value) -> Dict[int, float]:
    """Extract {procs: value(row)} for one level label."""
    return {r.procs: value(r) for r in rows if r.level == level}


def monotone_speedup(times: Dict[int, float], lo: int, hi: int,
                     factor: float) -> bool:
    """True when scaling lo→hi processors speeds up by at least ``factor``."""
    return times[lo] / times[hi] >= factor
