"""§5.4: hiding latency with excess concurrency has virtually no effect.

"Panel Cholesky does generate more tasks than processors, and it may
initially seem plausible that the optimization would have an effect on the
performance.  But turning the optimization on (setting the target number
of tasks per processor to two) has virtually no effect."
"""

import pytest

from repro.lab import latency_hiding_sweep, render_table, rows_to_series

from _support import bench_procs, once, show


def test_sec54_latency_hiding_cholesky(benchmark):
    procs = bench_procs()

    def run():
        rows = latency_hiding_sweep("cholesky", procs)
        return rows_to_series(rows, lambda r: r.metrics.elapsed)

    series = once(benchmark, run)
    show(render_table(
        "§5.4: Panel Cholesky on the iPSC/860, latency hiding off/on (seconds)",
        procs, series,
    ))
    base, hidden = series["target=1"], series["target=2"]
    # Virtually no effect: within a few percent at every processor count.
    for p in procs:
        assert hidden[p] == pytest.approx(base[p], rel=0.08)
