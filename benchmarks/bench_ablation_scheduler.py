"""Ablation (§5.6): scheduler eagerness to move tasks off their targets.

"It should therefore be possible to improve the Jade scheduler by making
it less eager to move tasks off their target processors in an attempt to
improve the load balance."

The ablation compares the shared-memory runtime's steal patience — how
long an idle processor re-checks its own queue before robbing another —
on Panel Cholesky, the application where stealing moves the most tasks.
Zero patience approximates the original, eager scheduler; large patience
approximates never stealing.
"""

from repro.apps import MachineKind
from repro.lab import make_application, render_table
from repro.lab.calibration import dash_params
from repro.machines.dash import DashMachine
from repro.runtime import RuntimeOptions, run_shared_memory
from repro.runtime.options import LocalityLevel

from _support import once, show

PATIENCE = {"eager (0 ms)": 0.0, "default (0.5 ms)": 0.5e-3, "patient (50 ms)": 50e-3}
PROCS = [4, 16]


def test_ablation_steal_patience_cholesky_dash(benchmark):
    def run():
        table = {}
        locality = {}
        for label, patience in PATIENCE.items():
            table[label] = {}
            locality[label] = {}
            for p in PROCS:
                app = make_application("cholesky", "paper")
                program = app.build(p, machine=MachineKind.DASH,
                                    level=LocalityLevel.LOCALITY)
                params = dash_params()
                params.steal_patience_seconds = patience
                metrics = run_shared_memory(
                    program, p, RuntimeOptions(), machine=DashMachine(p, params)
                )
                table[label][p] = metrics.elapsed
                locality[label][p] = metrics.task_locality_pct
        return table, locality

    table, locality = once(benchmark, run)
    show(render_table("Ablation: steal patience — Cholesky on DASH (seconds)",
                      PROCS, table))
    show(render_table("Ablation: steal patience — task locality (%)",
                      PROCS, locality, fmt=lambda v: f"{v:.1f}"))

    # Less eager stealing keeps more tasks on their targets ...
    assert locality["patient (50 ms)"][16] >= locality["eager (0 ms)"][16]
    # ... and the three schedulers bracket a modest performance range
    # rather than diverging (stealing is a balance/locality trade).
    for p in PROCS:
        values = [table[label][p] for label in PATIENCE]
        assert max(values) < min(values) * 1.8
