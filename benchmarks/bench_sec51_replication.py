"""§5.1: replication is the indispensable optimization.

"In the current application set replication is a crucial optimization.
All of the applications contain at least one shared object read by all of
the tasks in the important parallel sections ... Eliminating replication
would serialize all of the applications."

The bench runs Water with replication disabled (single exclusively-held
copies, see the communicator) and shows the parallel phases collapse to
near-serial execution, while the replicated run speeds up almost linearly.
"""

from repro.apps import MachineKind
from repro.lab import render_table, run_app
from repro.runtime import RuntimeOptions
from repro.runtime.options import LocalityLevel

from _support import once, show

PROCS = [1, 4, 8]


def test_sec51_no_replication_serializes_water(benchmark):
    def run():
        series = {"Replication": {}, "No Replication": {}}
        for p in PROCS:
            series["Replication"][p] = run_app(
                "water", p, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                RuntimeOptions(),
            ).elapsed
            series["No Replication"][p] = run_app(
                "water", p, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                RuntimeOptions(replication=False, adaptive_broadcast=False,
                               eager_update=False),
            ).elapsed
        return series

    series = once(benchmark, run)
    show(render_table("§5.1: Water with and without replication (seconds)",
                      PROCS, series))

    rep, norep = series["Replication"], series["No Replication"]
    # Replicated: near-linear. Non-replicated: every task of a phase reads
    # the positions object through one exclusively-held copy → the phases
    # serialize and adding processors barely helps.
    assert rep[1] / rep[8] > 6.0
    assert norep[1] / norep[8] < 2.0
    assert norep[8] > rep[8] * 3.0
