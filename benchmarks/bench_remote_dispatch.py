"""repro.fleet baseline: remote unit dispatch vs in-process execution.

The distributed fleet's value is scaling past one host, not raw speed —
over loopback, HTTP dispatch can only *add* overhead to an in-process
sweep.  This benchmark pins down what that overhead is for a tiny sweep
against one in-process ``repro worker``:

* **local_wall_s** — the sweep on the in-process serial path;
* **remote_wall_s** — the same units dispatched over HTTP to a loopback
  worker (dedup ledger, sequence numbers, the full protocol);
* **dispatch_overhead_s** — per-unit cost of the wire (request
  serialization, one HTTP round-trip, response parsing);
* byte-identity of the remote snapshot against the serial one is
  asserted, not just measured — the protocol must never perturb results.

The gate is deliberately loose (overhead under one second per unit, and
remote within 20x of local): loopback latency varies wildly across CI
hosts, and the contract worth enforcing is "small constant per unit",
not a specific microsecond count.
"""

import os
import time

from repro.apps import MachineKind
from repro.fleet import (
    RemoteBackend,
    run_units_resilient,
    sweep_snapshot_doc,
    sweep_units,
)
from repro.fleet.worker import WorkerServer
from repro.lab.experiments import ExperimentRow, locality_sweep
from repro.obs.snapshot import dump_json

from _support import once, show, snapshot


def _bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


def _snapshot_text(units, metrics_list, scale):
    rows = [ExperimentRow("water", u.machine, u.level, u.procs, m)
            for u, m in zip(units, metrics_list)]
    return dump_json(sweep_snapshot_doc("water", "ipsc860", scale, rows))


def test_remote_dispatch_overhead(benchmark):
    scale = _bench_scale()
    procs = [1, 2]
    units = sweep_units("water", MachineKind.IPSC860, procs, scale)

    server = WorkerServer(port=0)
    server.start_background()
    try:
        def measure():
            start = time.perf_counter()
            local = run_units_resilient(units, jobs=1)
            local_wall = time.perf_counter() - start
            start = time.perf_counter()
            remote = run_units_resilient(
                units, jobs=1, backend=RemoteBackend([server.url]))
            remote_wall = time.perf_counter() - start
            return local, remote, local_wall, remote_wall

        local, remote, local_wall, remote_wall = once(benchmark, measure)
    finally:
        server.stop()

    assert local.ok and remote.ok
    remote_text = _snapshot_text(units, remote.metrics, scale)
    serial_rows = locality_sweep("water", MachineKind.IPSC860, procs, scale)
    serial_text = dump_json(sweep_snapshot_doc("water", "ipsc860", scale,
                                               serial_rows))
    assert remote_text == serial_text, \
        "remote dispatch perturbed the sweep snapshot"

    overhead = max(0.0, remote_wall - local_wall) / len(units)
    show(f"remote dispatch: {len(units)} units of water/{scale} "
         f"over loopback HTTP\n"
         f"  local     {local_wall * 1e3:10.2f} ms\n"
         f"  remote    {remote_wall * 1e3:10.2f} ms\n"
         f"  overhead  {overhead * 1e3:10.2f} ms/unit")
    snapshot(
        "remote_dispatch",
        {
            "local_wall_s": local_wall,
            "remote_wall_s": remote_wall,
            "dispatch_overhead_s": overhead,
            "units": len(units),
        },
        meta={"app": "water", "scale": scale, "procs": procs},
    )
    assert overhead < 1.0, (
        f"per-unit dispatch overhead {overhead:.3f}s >= 1s — the wire "
        "protocol is doing more than one round-trip per unit")
    assert remote_wall < local_wall * 20 + 2.0, (
        f"remote sweep {remote_wall:.3f}s vs local {local_wall:.3f}s — "
        "loopback dispatch should cost a small constant per unit")
