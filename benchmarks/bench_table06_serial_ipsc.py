"""Table 6: serial and stripped execution times on the iPSC/860."""

import pytest

from repro.apps import MachineKind
from repro.lab import PAPER_TABLES, render_table, serial_and_stripped

from _support import once, show

APPS = ["water", "string", "ocean", "cholesky"]


def test_table06_serial_and_stripped_ipsc(benchmark):
    def run():
        return {app: serial_and_stripped(app, MachineKind.IPSC860) for app in APPS}

    rows = once(benchmark, run)
    table = {
        version: {app: rows[app][version] for app in APPS}
        for version in ("serial", "stripped")
    }
    paper = {
        version: {app: PAPER_TABLES[6][app][version] for app in APPS}
        for version in ("serial", "stripped")
    }
    show(render_table("Table 6: Serial and Stripped times on the iPSC/860 (seconds)",
                      APPS, table, paper=paper))

    for app in APPS:
        assert rows[app]["stripped"] == pytest.approx(
            PAPER_TABLES[6][app]["stripped"], rel=1e-3
        )
    # Ocean and Cholesky's stripped versions are *slower* than the
    # original serial code on the iPSC/860 (Table 6's surprise).
    assert rows["ocean"]["serial"] < rows["ocean"]["stripped"]
    assert rows["cholesky"]["serial"] < rows["cholesky"]["stripped"]
