"""Tables 7–10: execution times on the iPSC/860 at the locality levels.

Configuration per §5.2: adaptive broadcast, replication and concurrent
fetches on; latency hiding off (target tasks per processor = 1).

Shape assertions: Water and String speed up almost linearly and are
insensitive to the level; Ocean is strongly level-sensitive with a
U-shaped Task Placement curve (task management takes over at ≥16
processors); Panel Cholesky flattens in the 30–60 s band with
No Locality markedly worst at small processor counts.
"""

import pytest

from repro.apps import MachineKind
from repro.lab import PAPER_TABLES, locality_sweep, render_table, rows_to_series

from _support import bench_procs, monotone_speedup, once, show, snapshot

LEVEL_LABELS = {
    "task_placement": "Task Placement",
    "locality": "Locality",
    "no_locality": "No Locality",
}


def _run(app):
    procs = bench_procs()
    rows = locality_sweep(app, MachineKind.IPSC860, procs)
    series = rows_to_series(rows, lambda r: r.metrics.elapsed)
    return procs, {LEVEL_LABELS[k]: v for k, v in series.items()}


def _show(table_no, app, procs, series):
    show(render_table(
        f"Table {table_no}: Execution Times for {app.capitalize()} "
        f"on the iPSC/860 (seconds)",
        procs, series, paper=PAPER_TABLES[table_no],
    ))
    snapshot(
        f"table{table_no:02d}_{app}_ipsc",
        {"procs": procs, "elapsed_seconds": series},
        meta={"table": table_no, "app": app, "machine": "ipsc860",
              "paper": PAPER_TABLES[table_no]},
    )


def test_table07_water_ipsc(benchmark):
    procs, series = once(benchmark, lambda: _run("water"))
    _show(7, "water", procs, series)
    loc = series["Locality"]
    assert monotone_speedup(loc, 1, 32, factor=20.0)
    for p in procs:
        assert series["No Locality"][p] <= loc[p] * 1.15


def test_table08_string_ipsc(benchmark):
    procs, series = once(benchmark, lambda: _run("string"))
    _show(8, "string", procs, series)
    loc = series["Locality"]
    assert monotone_speedup(loc, 1, 32, factor=20.0)
    for p in procs:
        assert series["No Locality"][p] <= loc[p] * 1.15


def test_table09_ocean_ipsc(benchmark):
    procs, series = once(benchmark, lambda: _run("ocean"))
    _show(9, "ocean", procs, series)
    tp = series["Task Placement"]
    # The U-shape: a minimum in the middle, rising again by 32 (task
    # management on the main processor becomes the limiting factor).
    minimum = min(tp, key=tp.get)
    assert 4 <= minimum <= 16
    assert tp[32] > tp[minimum] * 1.5
    # No Locality is the worst configuration at small/mid counts.
    for p in (4, 8):
        assert series["No Locality"][p] > series["Task Placement"][p]


def test_table10_cholesky_ipsc(benchmark):
    procs, series = once(benchmark, lambda: _run("cholesky"))
    _show(10, "cholesky", procs, series)
    # The curve flattens: no configuration gets anywhere near linear
    # speedup (paper: best ≈1.7x at 32 processors).
    for label in ("Task Placement", "Locality"):
        curve = series[label]
        assert curve[1] / min(curve.values()) < 3.0
    # No Locality is the worst level at small processor counts (the paper
    # sees a dramatic 107 s at 2 processors; our synthetic panel DAG shows
    # the same direction with a smaller factor — see EXPERIMENTS.md).
    assert series["No Locality"][2] > series["Locality"][2] * 1.05
    assert series["No Locality"][4] > series["Locality"][4] * 1.05
