"""Figures 16–19: communication-to-computation ratio on the iPSC/860.

"... divide the total size of the messages (in Mbytes) by the total task
execution time (in seconds) to obtain the communication to computation
ratio ... The Water and String applications have very small ratios
relative to the communication bandwidth on the iPSC/860 (2.8 Mbytes/second
per link), while Ocean and Panel Cholesky have much larger ratios."
(§5.2.2)  Lower ratios correspond directly to higher task locality.
"""

from repro.apps import MachineKind
from repro.lab import locality_sweep, render_series, rows_to_series

from _support import bench_procs, once, show


def _series(app):
    procs = bench_procs()
    rows = locality_sweep(app, MachineKind.IPSC860, procs)
    return procs, rows_to_series(rows, lambda r: r.metrics.comm_to_comp_ratio)


FMT = lambda v: f"{v:8.4f}"


def test_fig16_water_comm_ratio(benchmark):
    procs, series = once(benchmark, lambda: _series("water"))
    show(render_series("Figure 16: Comm(MB)/Comp(s) — Water on the iPSC/860",
                       procs, series, "MB/s", fmt=FMT))
    # Very small ratios (paper's axis tops out at 0.10).
    assert series["locality"][32] < 0.10
    assert series["no_locality"][32] < 0.15


def test_fig17_string_comm_ratio(benchmark):
    procs, series = once(benchmark, lambda: _series("string"))
    show(render_series("Figure 17: Comm(MB)/Comp(s) — String on the iPSC/860",
                       procs, series, "MB/s", fmt=FMT))
    assert series["locality"][32] < 0.10


def test_fig18_ocean_comm_ratio(benchmark):
    procs, series = once(benchmark, lambda: _series("ocean"))
    show(render_series("Figure 18: Comm(MB)/Comp(s) — Ocean on the iPSC/860",
                       procs, series, "MB/s", fmt=FMT))
    # Much larger ratios than Water/String, ordered by locality level.
    # (The real Ocean touches ~two dozen arrays per task and reaches
    # ratios of 6–24 MB/s; our single-state-array model preserves the
    # ordering and the orders-of-magnitude gap to Water/String.)
    assert series["no_locality"][32] > 0.5
    assert series["no_locality"][32] > series["task_placement"][32]
    # Orders of magnitude above Water's ratio.
    water_rows = locality_sweep("water", MachineKind.IPSC860, [32])
    water_ratio = max(r.metrics.comm_to_comp_ratio for r in water_rows)
    assert series["no_locality"][32] > 10 * water_ratio


def test_fig19_cholesky_comm_ratio(benchmark):
    procs, series = once(benchmark, lambda: _series("cholesky"))
    show(render_series("Figure 19: Comm(MB)/Comp(s) — Panel Cholesky on the iPSC/860",
                       procs, series, "MB/s", fmt=FMT))
    assert series["no_locality"][32] > 1.0
    assert series["no_locality"][8] > series["task_placement"][8]
