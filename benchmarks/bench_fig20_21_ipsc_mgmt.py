"""Figures 20–21: task management percentage on the iPSC/860.

"At 16 processors and above, the task management overhead is the limiting
factor on the overall performance [of Ocean]" and for Panel Cholesky "the
task management overhead significantly limits the overall performance."
(§5.2.2)
"""

from repro.apps import MachineKind
from repro.lab import mgmt_percentage_sweep, render_series

from _support import bench_procs, once, show


def _series(app):
    procs = bench_procs()
    rows = mgmt_percentage_sweep(app, MachineKind.IPSC860, procs)
    return procs, {"task_placement": {r.procs: r.extra["mgmt_pct"] for r in rows}}


def test_fig20_ocean_mgmt_pct_ipsc(benchmark):
    procs, series = once(benchmark, lambda: _series("ocean"))
    show(render_series("Figure 20: Task Management % — Ocean on the iPSC/860",
                       procs, series, "%"))
    pct = series["task_placement"]
    # Task management dominates at 16 processors and above.
    assert pct[16] > 50.0
    assert pct[32] > 70.0
    assert pct[1] < 15.0


def test_fig21_cholesky_mgmt_pct_ipsc(benchmark):
    procs, series = once(benchmark, lambda: _series("cholesky"))
    show(render_series("Figure 21: Task Management % — Panel Cholesky on the iPSC/860",
                       procs, series, "%"))
    pct = series["task_placement"]
    assert pct[32] > 60.0
    assert pct[32] > pct[1]
