"""Tables 2–5: execution times on DASH at the locality optimization levels.

Shape assertions (§5.2.1): "The locality optimization level has little
impact on the overall performance of Water and String — all versions of
both applications exhibit almost linear speedup to 32 processors.  The
locality optimization level has a substantial impact on the performance of
Ocean and Panel Cholesky, with the Task Placement versions performing
substantially better than the Locality versions, which in turn perform
substantially better than the No Locality versions."
"""

import pytest

from repro.apps import MachineKind
from repro.lab import PAPER_TABLES, locality_sweep, render_table, rows_to_series

from _support import bench_procs, by_procs, monotone_speedup, once, show, snapshot

LEVEL_LABELS = {
    "task_placement": "Task Placement",
    "locality": "Locality",
    "no_locality": "No Locality",
}


def _run(app):
    procs = bench_procs()
    rows = locality_sweep(app, MachineKind.DASH, procs)
    series = rows_to_series(rows, lambda r: r.metrics.elapsed)
    return procs, rows, {LEVEL_LABELS[k]: v for k, v in series.items()}


def _show(table_no, app, procs, series):
    show(render_table(
        f"Table {table_no}: Execution Times for {app.capitalize()} on DASH (seconds)",
        procs, series, paper=PAPER_TABLES[table_no],
    ))
    snapshot(
        f"table{table_no:02d}_{app}_dash",
        {"procs": procs, "elapsed_seconds": series},
        meta={"table": table_no, "app": app, "machine": "dash",
              "paper": PAPER_TABLES[table_no]},
    )


def test_table02_water_dash(benchmark):
    procs, rows, series = once(benchmark, lambda: _run("water"))
    _show(2, "water", procs, series)
    loc = series["Locality"]
    # Almost linear speedup to 32 processors.
    assert monotone_speedup(loc, 1, 32, factor=20.0)
    # Locality level barely matters (within 10% everywhere).
    for p in procs:
        assert series["No Locality"][p] <= loc[p] * 1.10


def test_table03_string_dash(benchmark):
    procs, rows, series = once(benchmark, lambda: _run("string"))
    _show(3, "string", procs, series)
    loc = series["Locality"]
    assert monotone_speedup(loc, 1, 32, factor=20.0)
    for p in procs:
        assert series["No Locality"][p] <= loc[p] * 1.12


def test_table04_ocean_dash(benchmark):
    procs, rows, series = once(benchmark, lambda: _run("ocean"))
    _show(4, "ocean", procs, series)
    # Substantial level sensitivity at scale, in the paper's order.
    for p in (16, 24, 32):
        assert series["Task Placement"][p] <= series["Locality"][p] * 1.05
        assert series["Locality"][p] < series["No Locality"][p]
    # Far from linear speedup (the task-management wall).
    tp = series["Task Placement"]
    assert tp[1] / tp[32] < 24.0


def test_table05_cholesky_dash(benchmark):
    procs, rows, series = once(benchmark, lambda: _run("cholesky"))
    _show(5, "cholesky", procs, series)
    for p in (16, 24, 32):
        assert series["Locality"][p] <= series["No Locality"][p] * 1.05
    # Performance flattens: 32 processors is not ~4x better than 8.
    loc = series["Locality"]
    assert loc[8] / loc[32] < 2.5
    # Single-processor Jade overhead is visible (paper: 34.94 vs 28.91
    # stripped — ours runs a little heavier because the cache model also
    # charges the panels' memory traffic at one processor) but bounded.
    assert 1.05 < loc[1] / 28.91 < 1.60
