"""§5.5: the concurrent fetch optimization finds nothing to parallelize.

"At the highest locality optimization level the ratio of the object
latency to the task latency is very close to one for all applications,
indicating that fetching objects concurrently fails to improve the
communication behavior.  ... Almost all of the tasks in String, Ocean and
Panel Cholesky fetch at most one remote object per communication point.
In Water almost all communication points fetch one large and one small
object from the same processor, which serializes the communication."

Ocean and Panel Cholesky fetch ~one object per task, so their ratios sit
near 1.  Water and String fetch the big updated object plus the small
parameter object from the same owner; the replies serialize on that
owner's NIC, so the per-object latencies nearly coincide and the summed
ratio approaches the object count — overlap without benefit.  The
actionable conclusion is asserted directly: disabling the optimization
changes no application's execution time measurably.
"""

import pytest

from repro.apps import MachineKind
from repro.lab import fetch_latency_rows, render_table, run_app
from repro.runtime import RuntimeOptions
from repro.runtime.options import LocalityLevel

from _support import once, show

APPS = ["water", "string", "ocean", "cholesky"]


def test_sec55_object_to_task_latency_ratio(benchmark):
    def run():
        rows = fetch_latency_rows(APPS, procs=16)
        table = {}
        for r in rows:
            off = run_app(r.app, 16, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                          RuntimeOptions(concurrent_fetches=False))
            table[r.app] = {
                "ratio": r.extra["latency_ratio"],
                "mean_obj_ms": 1e3 * r.metrics.mean_object_latency,
                "mean_task_ms": 1e3 * r.metrics.mean_task_latency,
                "elapsed_on": r.metrics.elapsed,
                "elapsed_off": off.elapsed,
            }
        return table

    table = once(benchmark, run)
    show(render_table(
        "§5.5: Concurrent-fetch accounting at the Locality level (16 procs)",
        ["ratio", "mean_obj_ms", "mean_task_ms", "elapsed_on", "elapsed_off"],
        table, fmt=lambda v: f"{v:.3f}",
    ))
    # Single-fetch applications: ratio very close to one.
    for app in ("ocean", "cholesky"):
        assert 0.95 <= table[app]["ratio"] <= 1.6, app
    # Two-fetch-from-one-owner applications: bounded by the fetch count.
    for app in ("water", "string"):
        assert 0.95 <= table[app]["ratio"] <= 2.2, app
    # The optimization has no measurable performance effect on any app.
    for app in APPS:
        assert table[app]["elapsed_off"] == pytest.approx(
            table[app]["elapsed_on"], rel=0.02
        ), app
