"""repro.serve baseline: content-addressed cache hit vs fresh execution.

The serve subsystem's scaling story is that repeat traffic costs a
dictionary lookup instead of a simulation.  This benchmark measures the
gap for one representative run request:

* **fresh_wall_s** — ``submit`` with a cold cache (executes the
  simulation and stores the result document);
* **hit_wall_s** — the same request resubmitted against the warm cache
  (mean over many repetitions; single hits are too fast to time well);
* **speedup** — fresh over hit; asserted > 10x, conservatively — the
  real factor is orders of magnitude larger;
* byte-identity of the cached document against an independent fresh
  computation is asserted, not just measured.
"""

import json
import os
import time

from repro.obs.schema import validate_snapshot
from repro.serve import ResultCache, RunRequest, submit

from _support import once, show, snapshot

HIT_REPS = 200


def _bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "paper")


def test_serve_cache_hit_vs_fresh(benchmark):
    scale = _bench_scale()
    request = RunRequest(app="water", machine="ipsc860", scale=scale,
                         procs=8)

    def measure():
        cache = ResultCache()
        start = time.perf_counter()
        first = submit(request, cache=cache)
        fresh_wall = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(HIT_REPS):
            hit = submit(request, cache=cache)
        hit_wall = (time.perf_counter() - start) / HIT_REPS
        return cache, first, hit, fresh_wall, hit_wall

    cache, first, hit, fresh_wall, hit_wall = once(benchmark, measure)

    # Soundness before speed: the hit is byte-identical to an independent
    # fresh computation, and the document validates.
    assert not first.cache_hit and hit.cache_hit
    assert hit.text == first.text == submit(request).text
    assert validate_snapshot(json.loads(hit.text)) == []
    assert cache.counters()["hits"] == HIT_REPS

    speedup = fresh_wall / hit_wall if hit_wall > 0 else float("inf")
    show(f"serve cache: {request.describe()}\n"
         f"  fresh     {fresh_wall * 1e3:10.2f} ms\n"
         f"  cache hit {hit_wall * 1e6:10.2f} us (mean of {HIT_REPS})\n"
         f"  speedup   {speedup:10.0f}x")
    snapshot(
        "serve_cache",
        {
            "fresh_wall_s": fresh_wall,
            "hit_wall_s": hit_wall,
            "speedup": speedup,
            "result_bytes": len(first.text),
        },
        meta={"request": request.to_json(),
              "cache_key": first.cache_key, "hit_reps": HIT_REPS},
    )
    assert speedup > 10, (
        f"cache hit speedup {speedup:.1f}x <= 10x "
        f"(fresh {fresh_wall:.3f}s, hit {hit_wall:.6f}s)")
