"""Scaling story to 128 simulated processors.

The paper stops at 32 processors (the largest iPSC/860 partition its
authors had); the reproduction's machine models have no such limit — the
hypercube just gains dimensions.  This benchmark opens the >=128-processor
workload scale and records the engine-throughput envelope: simulated
events executed, host wall time, and events/sec for each run.

Ocean sits this one out: its tiny grid (32 columns) cannot decompose into
127 blocks.  Applications whose decomposition follows the processor count
(Water, String) triple their event volume between 32 and 128 processors,
which is exactly the load the engine fast path (heap compaction, O(1)
live-event counter, cached no-trace predicates) is meant to carry.
"""

import time

from repro.apps import MachineKind
from repro.lab import run_app

from _support import once, show, snapshot

APPS = ["water", "string", "cholesky"]
PROCS = [32, 64, 128]
SCALE = "tiny"


def _run_grid():
    rows = []
    for app in APPS:
        for procs in PROCS:
            start = time.perf_counter()
            metrics = run_app(app, procs, MachineKind.IPSC860, scale=SCALE)
            wall = time.perf_counter() - start
            rows.append({
                "app": app,
                "procs": procs,
                "elapsed_sim_s": metrics.elapsed,
                "events_fired": metrics.events_fired,
                "tasks_executed": metrics.tasks_executed,
                "wall_s": wall,
                "events_per_sec": metrics.events_fired / wall if wall > 0
                else 0.0,
            })
    return rows


def test_scale_128_processors(benchmark):
    rows = once(benchmark, _run_grid)

    lines = [f"{'app':<10} {'procs':>5} {'sim s':>10} {'events':>9} "
             f"{'wall s':>8} {'events/s':>11}"]
    for row in rows:
        lines.append(
            f"{row['app']:<10} {row['procs']:>5} {row['elapsed_sim_s']:>10.4f} "
            f"{row['events_fired']:>9} {row['wall_s']:>8.3f} "
            f"{row['events_per_sec']:>11,.0f}")
    show("\n".join(lines))
    snapshot(
        "scale128",
        {"rows": rows},
        meta={"machine": "ipsc860", "scale": SCALE, "procs": PROCS,
              "apps": APPS},
    )

    by_key = {(r["app"], r["procs"]): r for r in rows}
    for app in APPS:
        for procs in PROCS:
            row = by_key[(app, procs)]
            assert row["tasks_executed"] > 0
            assert row["events_per_sec"] > 0
    # Water/String decompose per-processor: 4x the processors means 4x the
    # tasks and roughly 4x the events — the 128-way runs genuinely exercise
    # a larger simulation, not the 32-way one renamed.
    for app in ("water", "string"):
        assert by_key[(app, 128)]["tasks_executed"] == \
            4 * by_key[(app, 32)]["tasks_executed"]
        assert by_key[(app, 128)]["events_fired"] > \
            3 * by_key[(app, 32)]["events_fired"]

    # Determinism holds at the new scale: a repeated 128-way run fires
    # exactly the same number of events.
    again = run_app("water", 128, MachineKind.IPSC860, scale=SCALE)
    assert again.events_fired == by_key[("water", 128)]["events_fired"]
    assert again.elapsed == by_key[("water", 128)]["elapsed_sim_s"]
