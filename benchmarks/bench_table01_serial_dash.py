"""Table 1: serial and stripped execution times on DASH.

"The serial version is the original serial version of the application with
no Jade modifications.  The stripped version is the Jade version with all
Jade constructs automatically stripped out ..." (§5.2.1)
"""

import pytest

from repro.apps import MachineKind
from repro.lab import PAPER_TABLES, render_table, serial_and_stripped

from _support import once, show

APPS = ["water", "string", "ocean", "cholesky"]


def test_table01_serial_and_stripped_dash(benchmark):
    def run():
        return {app: serial_and_stripped(app, MachineKind.DASH) for app in APPS}

    rows = once(benchmark, run)
    table = {
        version: {app: rows[app][version] for app in APPS}
        for version in ("serial", "stripped")
    }
    paper = {
        version: {app: PAPER_TABLES[1][app][version] for app in APPS}
        for version in ("serial", "stripped")
    }
    show(render_table("Table 1: Serial and Stripped times on DASH (seconds)",
                      APPS, table, paper=paper))

    # The stripped times are the calibration anchors: exact by construction.
    for app in APPS:
        assert rows[app]["stripped"] == pytest.approx(
            PAPER_TABLES[1][app]["stripped"], rel=1e-3
        )
    # Serial-vs-stripped direction matches the paper: the Jade conversion
    # slightly *helped* Panel Cholesky's serial code and slightly hurt the
    # other three.
    assert rows["cholesky"]["serial"] < rows["cholesky"]["stripped"]
    for app in ("water", "string", "ocean"):
        assert rows[app]["serial"] > rows[app]["stripped"]
