"""Tables 11–14: adaptive broadcast on/off on the iPSC/860 (§5.3).

Shapes: a large benefit for Water at high processor counts (serially
distributing the 165,888-byte positions object costs 31 × 0.07 s per
phase, the broadcast 0.31 s); a small benefit for String (its parallel
phases are ~106 s, so saving ~4 s of distribution hardly shows); no effect
for Ocean and Panel Cholesky above one processor; and a *degradation* of
their single-processor runs (the degenerate case where the one processor
accesses every version, so every update triggers broadcast bookkeeping).
"""

import pytest

from repro.apps import MachineKind
from repro.lab import PAPER_TABLES, broadcast_sweep, render_table, rows_to_series

from _support import bench_procs, once, show

LABELS = {"broadcast": "Adaptive Broadcast", "no-broadcast": "No Adaptive Broadcast"}


def _run(app):
    procs = bench_procs()
    rows = broadcast_sweep(app, procs)
    series = rows_to_series(rows, lambda r: r.metrics.elapsed)
    return procs, {LABELS[k]: v for k, v in series.items()}


def _show(table_no, app, procs, series):
    show(render_table(
        f"Table {table_no}: {app.capitalize()} with/without Adaptive Broadcast "
        f"on the iPSC/860 (seconds)",
        procs, series, paper=PAPER_TABLES[table_no],
    ))


def test_table11_water_broadcast(benchmark):
    procs, series = once(benchmark, lambda: _run("water"))
    _show(11, "water", procs, series)
    on, off = series["Adaptive Broadcast"], series["No Adaptive Broadcast"]
    # Substantial benefit at scale (paper: 91.53 vs 122.74 at 32).
    assert off[32] > on[32] * 1.15
    assert off[24] > on[24] * 1.10
    # Negligible at small counts.
    assert off[2] < on[2] * 1.05


def test_table12_string_broadcast(benchmark):
    procs, series = once(benchmark, lambda: _run("string"))
    _show(12, "string", procs, series)
    on, off = series["Adaptive Broadcast"], series["No Adaptive Broadcast"]
    # A much smaller effect than Water's (paper: ~1.6% at 32).
    assert off[32] >= on[32] * 0.999
    assert off[32] < on[32] * 1.08


def test_table13_ocean_broadcast(benchmark):
    procs, series = once(benchmark, lambda: _run("ocean"))
    _show(13, "ocean", procs, series)
    on, off = series["Adaptive Broadcast"], series["No Adaptive Broadcast"]
    # Above one processor: no effect (the same version is never read
    # everywhere, so the algorithm never triggers).
    for p in (2, 4, 8, 16, 24, 32):
        assert on[p] == pytest.approx(off[p], rel=0.05)
    # The single-processor degenerate case degrades with broadcast on.
    assert on[1] > off[1] * 1.10


def test_table14_cholesky_broadcast(benchmark):
    procs, series = once(benchmark, lambda: _run("cholesky"))
    _show(14, "cholesky", procs, series)
    on, off = series["Adaptive Broadcast"], series["No Adaptive Broadcast"]
    for p in (2, 4, 8, 16, 24, 32):
        assert on[p] == pytest.approx(off[p], rel=0.05)
    # Paper: 54.56 with vs 37.25 without at one processor.
    assert on[1] > off[1] * 1.20
