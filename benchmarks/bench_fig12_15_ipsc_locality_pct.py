"""Figures 12–15: task locality percentage on the iPSC/860.

"As for DASH, the task locality percentages for the Locality versions are
100 percent for Water and String, and somewhat less for Ocean and Panel
Cholesky.  For the Task Placement versions they go up to 100 percent for
Ocean, and to 92 percent for Panel Cholesky ... because the computation
starts out with the current version of all panels owned by the main
processor, which just initialized them." (§5.2.2)
"""

import pytest

from repro.apps import MachineKind
from repro.lab import locality_sweep, render_series, rows_to_series

from _support import bench_procs, once, show


def _series(app):
    procs = bench_procs()
    rows = locality_sweep(app, MachineKind.IPSC860, procs)
    return procs, rows_to_series(rows, lambda r: r.metrics.task_locality_pct)


def test_fig12_water_locality_pct_ipsc(benchmark):
    procs, series = once(benchmark, lambda: _series("water"))
    show(render_series("Figure 12: Task Locality % — Water on the iPSC/860",
                       procs, series, "%"))
    for p in procs:
        assert series["locality"][p] == pytest.approx(100.0)
    assert series["no_locality"][32] < 25.0


def test_fig13_string_locality_pct_ipsc(benchmark):
    procs, series = once(benchmark, lambda: _series("string"))
    show(render_series("Figure 13: Task Locality % — String on the iPSC/860",
                       procs, series, "%"))
    for p in procs:
        assert series["locality"][p] == pytest.approx(100.0)
    assert series["no_locality"][32] < 25.0


def test_fig14_ocean_locality_pct_ipsc(benchmark):
    procs, series = once(benchmark, lambda: _series("ocean"))
    show(render_series("Figure 14: Task Locality % — Ocean on the iPSC/860",
                       procs, series, "%"))
    for p in procs:
        assert series["task_placement"][p] == pytest.approx(100.0)
    assert series["no_locality"][32] < 30.0


def test_fig15_cholesky_locality_pct_ipsc(benchmark):
    procs, series = once(benchmark, lambda: _series("cholesky"))
    show(render_series("Figure 15: Task Locality % — Panel Cholesky on the iPSC/860",
                       procs, series, "%"))
    # §5.2.2: about 92% at Task Placement — the first task to touch each
    # panel targets the main processor (its initializer) but is placed
    # elsewhere.
    for p in (8, 16, 24, 32):
        assert 85.0 < series["task_placement"][p] < 100.0
    assert series["no_locality"][32] < 35.0
