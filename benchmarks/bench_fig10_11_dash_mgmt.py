"""Figures 10–11: task management percentage on DASH (Ocean, Cholesky).

"We quantitatively evaluate the task management overhead by executing a
work-free version of the program ... The task management percentage is the
execution time of the work-free version divided by the execution time of
the original version." (§5.2.1)  Both figures run at the Task Placement
level and show the percentage rising dramatically with processor count.
"""

from repro.apps import MachineKind
from repro.lab import mgmt_percentage_sweep, render_series

from _support import bench_procs, once, show


def _series(app):
    procs = bench_procs()
    rows = mgmt_percentage_sweep(app, MachineKind.DASH, procs)
    return procs, {"task_placement": {r.procs: r.extra["mgmt_pct"] for r in rows}}


def test_fig10_ocean_mgmt_pct_dash(benchmark):
    procs, series = once(benchmark, lambda: _series("ocean"))
    show(render_series("Figure 10: Task Management % — Ocean on DASH",
                       procs, series, "%"))
    pct = series["task_placement"]
    # Rises dramatically with the number of processors.
    assert pct[32] > pct[1] * 4
    assert pct[32] > 30.0
    assert pct[1] < 10.0


def test_fig11_cholesky_mgmt_pct_dash(benchmark):
    procs, series = once(benchmark, lambda: _series("cholesky"))
    show(render_series("Figure 11: Task Management % — Panel Cholesky on DASH",
                       procs, series, "%"))
    pct = series["task_placement"]
    assert pct[32] > pct[1] * 2
    assert pct[32] > 40.0
