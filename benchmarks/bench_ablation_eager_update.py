"""Ablation (§5.6 / §6): the eager-update extension protocol.

"Although we have built a Jade implementation that uses an update protocol
to eagerly transfer data from producers to potential consumers, this
implementation did not generate uniformly positive results.  While the
protocol worked well for applications such as Water and String with
regular, repetitive communication patterns, it degraded the performance of
other applications by generating an excessive amount of communication."

The ablation disables adaptive broadcast (eager update replaces it as the
producer-push mechanism) and compares demand fetching against eager
pushing for a regular application (Water) and an irregular one (Panel
Cholesky).
"""

import pytest

from repro.apps import MachineKind
from repro.lab import render_table, run_app
from repro.runtime import RuntimeOptions
from repro.runtime.options import LocalityLevel

from _support import once, show

PROCS = [8, 32]


def _pair(app, p):
    demand = run_app(app, p, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                     RuntimeOptions(adaptive_broadcast=False))
    eager = run_app(app, p, MachineKind.IPSC860, LocalityLevel.LOCALITY,
                    RuntimeOptions(adaptive_broadcast=False, eager_update=True))
    return demand, eager


def test_ablation_eager_update(benchmark):
    def run():
        out = {}
        for app in ("water", "cholesky"):
            for p in PROCS:
                demand, eager = _pair(app, p)
                out[(app, p)] = (demand, eager)
        return out

    results = once(benchmark, run)
    table = {}
    for (app, p), (demand, eager) in results.items():
        table[f"{app} demand"] = table.get(f"{app} demand", {})
        table[f"{app} eager"] = table.get(f"{app} eager", {})
        table[f"{app} demand"][p] = demand.elapsed
        table[f"{app} eager"][p] = eager.elapsed
    show(render_table("Ablation: eager update protocol (seconds)", PROCS, table))

    # Regular pattern (Water): eager pushing is a safe substitute for
    # demand distribution — the pushed set is exactly the future reader
    # set, so performance stays within a few percent (both serialize the
    # same bytes through the producer's NIC).
    water_demand, water_eager = results[("water", 32)]
    assert water_eager.elapsed == pytest.approx(water_demand.elapsed, rel=0.05)
    assert water_eager.eager_updates > 0

    # Irregular pattern (Cholesky): eager pushing moves panel versions to
    # every processor that ever held a copy — excessive communication.
    chol_demand, chol_eager = results[("cholesky", 32)]
    assert chol_eager.object_bytes > chol_demand.object_bytes * 1.5
    assert chol_eager.elapsed >= chol_demand.elapsed * 0.98
