"""Fault-injection cost model: zero-plan overhead and retransmission tax.

Two claims the ``repro.faults`` + ``repro.runtime.reliable`` stack makes,
asserted here and frozen into a committed, bench-diff-gated baseline:

* **Zero-fault plans are free.**  A run under an all-zero
  :class:`~repro.faults.FaultSpec` is *byte-identical* (every serialized
  metric) to a run with no fault plan installed — the injection points
  short-circuit before touching any RNG and the reliable-delivery layer
  is never constructed.
* **The retransmission tax is bounded and attributable.**  Under a 5%
  drop rate the run still completes coherently; the elapsed-time overhead
  and the full recovery counter set (retransmissions, suppressed
  duplicates, ack bytes, recovery stall) are recorded so regressions in
  the ARQ protocol's pricing show up as bench-diff deltas.

Only simulated quantities go into the snapshot — no host wall-clock —
so the committed baseline diffs clean on any machine.
"""

from repro.apps import MachineKind
from repro.faults import FaultSpec
from repro.lab.experiments import run_app
from repro.obs.snapshot import dump_json

from _support import once, show, snapshot

#: Fixed configuration: the gated artifact must not depend on the
#: REPRO_BENCH_* development knobs, or the committed baseline would only
#: match one environment.
APP, PROCS, SCALE = "water", 4, "tiny"
DROP_SPEC = FaultSpec(seed=7, drop_rate=0.05)


def _metrics_fields(metrics):
    return {
        "elapsed": metrics.elapsed,
        "events_fired": metrics.events_fired,
        "total_messages": metrics.total_messages,
        "total_bytes": metrics.total_bytes,
    }


def test_chaos_zero_plan_overhead_and_retransmission_tax(benchmark):
    def measure():
        baseline = run_app(APP, PROCS, MachineKind.IPSC860, scale=SCALE)
        zero_plan = run_app(APP, PROCS, MachineKind.IPSC860, scale=SCALE,
                            faults=FaultSpec(seed=7))
        faulty = run_app(APP, PROCS, MachineKind.IPSC860, scale=SCALE,
                         faults=DROP_SPEC)
        return baseline, zero_plan, faulty

    baseline, zero_plan, faulty = once(benchmark, measure)

    # Claim 1: the all-zero plan changed nothing — not one serialized byte.
    assert dump_json(zero_plan.to_json()) == dump_json(baseline.to_json()), \
        "all-zero fault plan perturbed the run"
    assert zero_plan.messages_dropped == 0
    assert zero_plan.retransmissions == 0
    assert zero_plan.ack_bytes == 0.0

    # Claim 2: a 5% drop rate is survivable and its tax is visible.
    overhead_pct = 100.0 * (faulty.elapsed / baseline.elapsed - 1.0)
    assert faulty.messages_dropped > 0, "5% drop rate never fired"
    assert faulty.retransmissions >= faulty.messages_dropped - \
        faulty.duplicates_suppressed
    assert faulty.elapsed >= baseline.elapsed, \
        "recovering from drops cannot be faster than never dropping"
    assert overhead_pct < 50.0, (
        f"retransmission tax {overhead_pct:.1f}% is out of the modeled "
        "regime for a 5% drop rate")

    show(f"chaos overhead ({APP} on ipsc860, {PROCS} procs, {SCALE}):\n"
         f"  fault-free elapsed   {baseline.elapsed:.6g} s\n"
         f"  zero-plan elapsed    {zero_plan.elapsed:.6g} s (byte-identical)\n"
         f"  drop=5% elapsed      {faulty.elapsed:.6g} s "
         f"({overhead_pct:+.2f}%)\n"
         f"  dropped/retransmit   {faulty.messages_dropped} / "
         f"{faulty.retransmissions}\n"
         f"  suppressed/ack bytes {faulty.duplicates_suppressed} / "
         f"{faulty.ack_bytes:.0f}\n"
         f"  recovery stall       {faulty.recovery_stall_us:.6g} us")
    snapshot(
        "chaos_overhead",
        {
            "baseline": _metrics_fields(baseline),
            "zero_plan_identical": 1,
            "faulty": {
                **_metrics_fields(faulty),
                "overhead_pct": overhead_pct,
                "messages_dropped": faulty.messages_dropped,
                "retransmissions": faulty.retransmissions,
                "duplicates_suppressed": faulty.duplicates_suppressed,
                "ack_bytes": faulty.ack_bytes,
                "recovery_stall_us": faulty.recovery_stall_us,
            },
        },
        meta={"app": APP, "machine": "ipsc860", "scale": SCALE,
              "procs": PROCS, "fault_spec": DROP_SPEC.to_json()},
    )
