"""Figures 2–5: percentage of tasks executed on the target processor, DASH.

Shape assertions (§5.2.1): "The task locality percentage at the Locality
optimization level for both String and Water is 100 percent ... The task
locality percentage at Locality for Panel Cholesky and Ocean ... is
substantially less than 100 percent [for Cholesky in our model; see
EXPERIMENTS.md for Ocean] ... At Task Placement the task locality
percentage goes back up to 100 percent ... At No Locality the task
locality percentage drops quickly as the number of processors increases."
"""

import pytest

from repro.apps import MachineKind
from repro.lab import locality_sweep, render_series, rows_to_series

from _support import bench_procs, once, show


def _series(app):
    procs = bench_procs()
    rows = locality_sweep(app, MachineKind.DASH, procs)
    return procs, rows_to_series(rows, lambda r: r.metrics.task_locality_pct)


def test_fig02_water_locality_pct(benchmark):
    procs, series = once(benchmark, lambda: _series("water"))
    show(render_series("Figure 2: Task Locality % — Water on DASH", procs, series, "%"))
    for p in procs:
        assert series["locality"][p] == pytest.approx(100.0)
    assert series["no_locality"][32] < 25.0


def test_fig03_string_locality_pct(benchmark):
    procs, series = once(benchmark, lambda: _series("string"))
    show(render_series("Figure 3: Task Locality % — String on DASH", procs, series, "%"))
    for p in procs:
        assert series["locality"][p] == pytest.approx(100.0)
    assert series["no_locality"][32] < 25.0


def test_fig04_ocean_locality_pct(benchmark):
    procs, series = once(benchmark, lambda: _series("ocean"))
    show(render_series("Figure 4: Task Locality % — Ocean on DASH", procs, series, "%"))
    for p in procs:
        assert series["task_placement"][p] == pytest.approx(100.0)
        assert series["locality"][p] >= series["no_locality"][p] - 1e-9
    assert series["no_locality"][32] < 30.0


def test_fig05_cholesky_locality_pct(benchmark):
    procs, series = once(benchmark, lambda: _series("cholesky"))
    show(render_series("Figure 5: Task Locality % — Panel Cholesky on DASH",
                       procs, series, "%"))
    for p in procs:
        assert series["task_placement"][p] == pytest.approx(100.0)
    # The load balancer moves a significant number of tasks off their
    # targets at small-to-mid processor counts.
    assert series["locality"][2] < 99.0
    assert series["no_locality"][32] < 30.0
