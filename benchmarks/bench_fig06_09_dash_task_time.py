"""Figures 6–9: total task execution time on DASH.

"On DASH all shared object communication takes place during the execution
of tasks as they access shared objects: differences in the communication
show up as differences in the execution times of the tasks." (§5.2.1)

Shape assertions: task time rises with processor count (more total
communication); for Water and String the locality level makes a very small
relative difference, for Ocean and Panel Cholesky a large one.
"""

import pytest

from repro.apps import MachineKind
from repro.lab import locality_sweep, render_series, rows_to_series

from _support import bench_procs, once, show


def _series(app):
    procs = bench_procs()
    rows = locality_sweep(app, MachineKind.DASH, procs)
    return procs, rows_to_series(rows, lambda r: r.metrics.task_time_total)


def _relative_gap(series, p):
    base = series["locality"][p]
    return (series["no_locality"][p] - base) / base


def test_fig06_water_task_time(benchmark):
    procs, series = once(benchmark, lambda: _series("water"))
    show(render_series("Figure 6: Total Task Execution Time — Water on DASH",
                       procs, series, "s"))
    # Communication is a tiny fraction of Water's compute: levels within 2%.
    assert abs(_relative_gap(series, 32)) < 0.02
    # More processors → more total communication inside tasks.
    assert series["locality"][32] > series["locality"][1]


def test_fig07_string_task_time(benchmark):
    procs, series = once(benchmark, lambda: _series("string"))
    show(render_series("Figure 7: Total Task Execution Time — String on DASH",
                       procs, series, "s"))
    assert abs(_relative_gap(series, 32)) < 0.02
    assert series["locality"][32] > series["locality"][1]


def test_fig08_ocean_task_time(benchmark):
    procs, series = once(benchmark, lambda: _series("ocean"))
    show(render_series("Figure 8: Total Task Execution Time — Ocean on DASH",
                       procs, series, "s"))
    # Ocean accesses potentially-remote objects frequently: the level gap
    # is large (paper Figure 8 shows ~2x between extremes at 32).
    assert _relative_gap(series, 32) > 0.15
    assert series["no_locality"][32] > series["no_locality"][1] * 1.2


def test_fig09_cholesky_task_time(benchmark):
    procs, series = once(benchmark, lambda: _series("cholesky"))
    show(render_series("Figure 9: Total Task Execution Time — Panel Cholesky on DASH",
                       procs, series, "s"))
    assert _relative_gap(series, 32) > 0.15
    assert series["task_placement"][32] <= series["no_locality"][32]
